"""Pluggable sweep execution: ensemble simulation at provisioning scale.

The paper's provisioning question — how many queues and how much
buffering does a link need before a program class deadlocks (Sections
2.3 and 8) — is answered here by *sweeps*: thousands to millions of
(program, config, policy) simulations whose outcomes aggregate into
deadlock rates, makespan distributions and tail quantiles. This package
is the execution subsystem for those sweeps, split along three axes:

* **what to run** — :class:`~repro.sweep.jobs.SimJob` (one simulation),
  :func:`~repro.sweep.grid.sweep_jobs` /
  :func:`~repro.sweep.grid.iter_sweep_jobs` (the canonical
  policy x queues x capacity grid with aligned labels);
* **how to run it** — an execution *backend*
  (:mod:`repro.sweep.backends`), chosen per
  :class:`~repro.sweep.plan.SweepPlan` and driven by a
  :class:`~repro.sweep.plan.SweepSession`;
* **what to keep** — flat :class:`~repro.sweep.summary.RunSummary` rows
  (one per job, constant size), streaming reducers
  (:mod:`repro.sweep.reducers`) with an exact ``merge`` contract, and
  on-demand full results via :class:`~repro.sweep.plan.ResultHandle`.

The backend contract
--------------------

A backend (see :class:`repro.sweep.backends.ExecutionBackend`) maps an
iterable of jobs to an *ordered* stream of
``(index, row, result, witness)`` records
(:class:`~repro.sweep.backends.JobRecord`):

* records arrive in job order, whatever the worker scheduling;
* ``row`` — the job's :class:`~repro.sweep.summary.RunSummary` — must
  be **byte-identical across backends** for the same job list; the
  transport (pipe, shared memory) may differ, the row may not;
* ``result`` is the full simulation result when the backend
  materializes results eagerly, else ``None`` and the session hydrates
  on demand (deterministic in-parent re-execution);
* ``witness`` is a compact deadlock-certificate dict
  (:meth:`~repro.witness.DeadlockWitness.as_dict`) mined *inside the
  worker* when the session asked for it
  (``WorkerContext.mine_witnesses``) and the job deadlocked, else
  ``None`` — so summary-only backends warm the witness store at full
  speed without shipping full results; the parent merges under the
  store's subsumption rules;
* worker processes apply the session's
  :class:`~repro.sweep.backends.WorkerContext` — the persistent
  analysis disk tier, the single-host shared-memory analysis arena
  (:mod:`repro.perf.shm_cache`), the mining flag, and any fault plan —
  before running jobs.

Built-in backends:

======== ==============================================================
serial   In-process, in order. The reference implementation: every
         other backend's rows are differential-tested against it.
pool     Chunked ``multiprocessing.Pool`` with a bounded, ordered
         ``apply_async`` window. Full results (when requested) are
         pickled back through the pool pipe — exact, but pipe-bound for
         large full-result sweeps.
shm      Workers encode rows into a ``multiprocessing.shared_memory``
         arena; only string-overflow rows (pathological error
         messages) ride the pipe. Full results are never shipped:
         handles re-execute on demand. Accepts lazy job streams —
         generator input is pulled incrementally, never materialized.
         The backend for sweeps where shipping every full result is
         the bottleneck.
======== ==============================================================

The arena layout
----------------

The ``shm`` backend's arena (:class:`~repro.sweep.arena.SummaryArena`)
is a *segmented* sequence of fixed-width slots of
:data:`~repro.sweep.arena.ROW_SIZE` (256) bytes, one per job, written by
whichever worker ran that job (slots are disjoint — no locks) and
decoded directly by the parent. Segments of
:data:`~repro.sweep.arena.DEFAULT_SEGMENT_ROWS` slots are separate
shared-memory blocks named ``{base}_s{k}`` (segment 0 keeps the base
name), allocated on demand by the owner as the job stream advances
(``ensure_rows``) and unlinked once every slot in them has been drained
(``retire_below``) — so a streaming sweep's resident shared memory is
bounded by the in-flight window, not the grid size, and ``n_jobs``
never needs to be known up front. Workers attach lazily, mapping only
the segments their chunks actually touch. Within a segment each slot
is::

    offset  size  field
    ------  ----  -----------------------------------------------
         0     1  flags (WRITTEN | COMPLETED | DEADLOCKED |
                  TIMED_OUT | HAS_KIND | HAS_ERROR)
         1     8  time       (int64)        9     8  events (int64)
        17     8  words      (int64)       25     4  queues (int32)
        29     4  capacity   (int32)
        33  1+23  policy     (len byte + utf-8, max 23 bytes)
        57  1+31  error_kind (len byte + utf-8, max 31 bytes)
        89  2+165 error      (len u16 + utf-8, max 165 bytes)

Strings that exceed their field fall back to the pipe (never truncated);
an unwritten slot raises on decode instead of reading as a row of
zeros. See :mod:`repro.sweep.arena`.

Reducers and quantiles
----------------------

Reducers (:class:`~repro.sweep.reducers.StreamReducer`) fold rows into
O(1)-state aggregates in the parent, in job order — outcome counts,
makespan histograms, deadlock rate by config, per-config makespan
statistics, and t-digest makespan quantiles
(:class:`~repro.sweep.reducers.QuantileReducer`, the ``repro sweep
--quantiles p50,p95,p99`` answer to "what tail latency does this
provisioning buy"). Every reducer supports ``merge(other)`` so shards
of a sweep reduced independently — other processes, other machines —
combine exactly (within digest rank error for quantiles).

Fault tolerance and checkpointing
---------------------------------

A sweep that runs for hours meets real failures: workers die (OOM
kills), corners hang, the whole process gets SIGKILLed. Setting any of
``job_timeout_s`` / ``max_retries`` / ``fault_plan`` on a
:class:`~repro.sweep.plan.SweepPlan` (CLI: ``--job-timeout``,
``--max-retries``) routes the ``pool`` and ``shm`` backends through the
supervised executor (:mod:`repro.sweep.backends.supervise`), which owns
worker lifecycles directly — one duplex pipe per worker, so a dead
worker is an EOF, not a deadlock:

* a **crashed worker** (abrupt exit, broken pipe, unwritten arena slot)
  has its in-flight job requeued on a surviving worker with bounded
  retries and exponential backoff; a job that keeps killing workers is
  quarantined as a :class:`~repro.sweep.jobs.BatchError` row of kind
  :data:`~repro.sweep.jobs.WORKER_CRASH_KIND` (under
  ``on_error="collect"``) instead of aborting the sweep;
* a **hung job** is killed at ``job_timeout_s`` and retried; a
  persistent hang becomes a ``timeout``-outcome row — a hung corner is
  data, same as a deadlock;
* faults are *injectable* deterministically
  (:class:`~repro.sweep.fault.FaultPlan`) so the recovery machinery is
  differential-tested byte-identical against fault-free runs.

``checkpoint`` (CLI: ``--checkpoint PATH``, with ``--checkpoint-every``
and ``--resume``) adds crash recovery for the *parent*: periodic atomic
snapshots of reducer state plus a completed-job bitmap, keyed by the
sweep's grid fingerprint (:mod:`repro.sweep.checkpoint`). A resumed
sweep skips finished jobs and reports reducer summaries byte-identical
to a never-interrupted run; a corrupt checkpoint reads as absent (clean
restart), a checkpoint from a *different* sweep refuses to resume. A
final snapshot that cannot be *written* is surfaced, not swallowed: the
session records it (``SweepSession.checkpoint_error``), warns, and
raises :class:`~repro.errors.CheckpointError` — a stale checkpoint
resumed later would silently redo work.

Witness pruning
---------------

Deadlock-dense grids mostly re-prove deadlocks they have already
proven. Giving a :class:`~repro.sweep.plan.SweepPlan` a
``witness_store`` (:class:`~repro.witness.WitnessStore`; CLI: ``repro
sweep --witness-store PATH``) lets the session answer such jobs from
*certificates* mined on earlier runs (:mod:`repro.witness`): a job a
stored :class:`~repro.witness.DeadlockWitness` covers emits its
deadlock row via :func:`~repro.sweep.jobs.witness_row` without
simulating, byte-identical to the simulated row — the certificate's
capacity band is exactly the set of capacities whose run replays the
witnessed trace. Pruning is restricted to
:data:`~repro.sweep.planner.MONOTONE_POLICIES` (static); FCFS — where
extra buffering can change the outcome, a pinned counterexample — is
exempt by construction and always simulates. Mining runs in-process on
the serial backend and *inside the workers* on pool/shm/supervised
(the ``witness`` field of the backend contract), so cold multiprocess
sweeps grow the store too. Skips and newly mined certificates are
counted on the session (``witness_pruned`` / ``witness_mined``; both
surface in ``repro sweep --json``), compose with
``--checkpoint``/``--resume``, and
seed the frontier planner's bisection bounds
(:meth:`~repro.witness.WitnessStore.monotone_bound`).

The frontier planner
--------------------

Most provisioning sweeps exist to answer one question: the *minimal*
buffering at which each (policy, queues) line completes. The planner
(:mod:`repro.sweep.planner`) answers it without exhausting the capacity
axis. A :class:`~repro.sweep.planner.PlanSpec` names the program, the
grid axes and the execution knobs;
:class:`~repro.sweep.planner.FrontierPlanner` binary-searches each line
whose policy is proven monotone in capacity (static — 2 + log2(n)
probes instead of n) and falls back to full evaluation for the rest
(FCFS, where extra buffering can *introduce* deadlock — a pinned
counterexample). Every probe is an ordinary
:class:`~repro.sweep.plan.SweepPlan` job whose
:class:`~repro.sweep.summary.RunSummary` row carries its exhaustive-grid
index, so reducers and backends compose unchanged and a planner row is
byte-identical to the grid's row at the same coordinates. Probe points
share capacity-independent analysis artifacts (routes,
competing-message sets) through the analysis cache, so only the
capacity-dependent work is repaid per probe. CLI: ``repro frontier``
(``--exhaustive`` forces the full evaluation baseline).
"""

from repro.sweep.arena import ROW_SIZE, SummaryArena
from repro.sweep.backends import (
    ExecutionBackend,
    JobRecord,
    WorkerContext,
    available_backends,
    get_backend,
    register_backend,
)
from repro.sweep.checkpoint import SweepCheckpoint, sweep_fingerprint
from repro.sweep.fault import FaultPlan, Tolerance
from repro.sweep.grid import (
    iter_sweep_jobs,
    iter_sweep_labels,
    sweep_jobs,
    sweep_label,
    sweep_labels,
)
from repro.sweep.jobs import (
    WORKER_CRASH_KIND,
    BatchError,
    SimJob,
    job_fingerprint,
    witness_row,
)
from repro.sweep.plan import (
    ResultHandle,
    SweepOutcome,
    SweepPlan,
    SweepSession,
    simulate_many,
    simulate_stream,
)
from repro.sweep.planner import (
    MONOTONE_POLICIES,
    FrontierPlanner,
    FrontierReport,
    FrontierResult,
    PlanSpec,
    exhaustive_spec,
    find_frontier,
)
from repro.sweep.reducers import (
    CompletedCount,
    DeadlockRateByConfig,
    MakespanHistogram,
    PerConfigMakespan,
    QuantileReducer,
    StreamReducer,
    merge_reducers,
    parse_quantiles,
    validate_quantile_labels,
)
from repro.sweep.summary import RunSummary, summarize_result

__all__ = [
    "BatchError",
    "CompletedCount",
    "DeadlockRateByConfig",
    "ExecutionBackend",
    "FaultPlan",
    "FrontierPlanner",
    "FrontierReport",
    "FrontierResult",
    "JobRecord",
    "MONOTONE_POLICIES",
    "MakespanHistogram",
    "PerConfigMakespan",
    "PlanSpec",
    "QuantileReducer",
    "ROW_SIZE",
    "ResultHandle",
    "RunSummary",
    "SimJob",
    "StreamReducer",
    "SummaryArena",
    "SweepCheckpoint",
    "SweepOutcome",
    "SweepPlan",
    "SweepSession",
    "Tolerance",
    "WORKER_CRASH_KIND",
    "WorkerContext",
    "available_backends",
    "exhaustive_spec",
    "find_frontier",
    "get_backend",
    "iter_sweep_jobs",
    "iter_sweep_labels",
    "job_fingerprint",
    "merge_reducers",
    "parse_quantiles",
    "register_backend",
    "simulate_many",
    "simulate_stream",
    "summarize_result",
    "sweep_fingerprint",
    "sweep_jobs",
    "sweep_label",
    "sweep_labels",
    "validate_quantile_labels",
    "witness_row",
]
