"""The canonical provisioning grid: (policy x queues x capacity) x repeat.

Queue-provisioning questions (Sections 2.3 and 8 of the paper: how many
queues, how much buffering, before this program class deadlocks?) are
answered by sweeping this grid. Jobs and their human-readable labels
derive from one shared iterator so their positional alignment cannot
drift.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

from repro.arch.config import ArrayConfig
from repro.sweep.jobs import SimJob

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.program import ArrayProgram


def sweep_label(
    policy: str, queues: int, capacity: int, rep: int = 0, repeat: int = 1
) -> str:
    """The canonical human-readable label of one grid point.

    Shared by the exhaustive grid and the frontier planner
    (:mod:`repro.sweep.planner`), so a planner probe and the grid job at
    the same coordinates always print identically.
    """
    suffix = f" #{rep + 1}" if repeat > 1 else ""
    return f"{policy} q={queues} cap={capacity}{suffix}"


def _sweep_grid(
    policies: Sequence[str],
    queues: Sequence[int],
    capacities: Sequence[int],
    repeat: int,
):
    """The one canonical (policy, queues, capacity, label) iteration.

    Both :func:`sweep_jobs` and :func:`sweep_labels` derive from this
    grid, so their positional alignment cannot drift.
    """
    for pol in policies:
        for nq in queues:
            for cap in capacities:
                for rep in range(repeat):
                    yield pol, nq, cap, sweep_label(pol, nq, cap, rep, repeat)


def iter_sweep_jobs(
    program: "ArrayProgram",
    policies: Sequence[str] = ("ordered",),
    queues: Sequence[int] = (1,),
    capacities: Sequence[int] = (0,),
    registers: dict[str, dict[str, float | None]] | None = None,
    repeat: int = 1,
) -> Iterator[SimJob]:
    """Lazily generate the (policy x queues x capacity) x repeat sweep.

    The generator form feeds :func:`repro.sweep.simulate_stream` without
    ever holding the whole sweep in memory.
    """
    for pol, nq, cap, _label in _sweep_grid(policies, queues, capacities, repeat):
        yield SimJob(
            program,
            config=ArrayConfig(queues_per_link=nq, queue_capacity=cap),
            policy=pol,
            registers=registers,
        )


def iter_sweep_labels(
    policies: Sequence[str] = ("ordered",),
    queues: Sequence[int] = (1,),
    capacities: Sequence[int] = (0,),
    repeat: int = 1,
) -> Iterator[str]:
    """Lazy labels aligned with :func:`iter_sweep_jobs` order."""
    for _pol, _nq, _cap, label in _sweep_grid(policies, queues, capacities, repeat):
        yield label


def sweep_jobs(
    program: "ArrayProgram",
    policies: Sequence[str] = ("ordered",),
    queues: Sequence[int] = (1,),
    capacities: Sequence[int] = (0,),
    registers: dict[str, dict[str, float | None]] | None = None,
    repeat: int = 1,
) -> list[SimJob]:
    """The cartesian sweep (policy x queues x capacity) x repeat as jobs."""
    return list(
        iter_sweep_jobs(
            program,
            policies=policies,
            queues=queues,
            capacities=capacities,
            registers=registers,
            repeat=repeat,
        )
    )


def sweep_labels(
    policies: Sequence[str] = ("ordered",),
    queues: Sequence[int] = (1,),
    capacities: Sequence[int] = (0,),
    repeat: int = 1,
) -> list[str]:
    """Human-readable labels aligned with :func:`sweep_jobs` order."""
    return list(
        iter_sweep_labels(
            policies=policies, queues=queues, capacities=capacities, repeat=repeat
        )
    )
