"""Deterministic fault injection and fault-tolerance knobs for sweeps.

Million-job provisioning sweeps die in three characteristic ways: a
worker process crashes mid-job (OOM kill, interpreter abort), a job
hangs past any useful wall clock, or a shared-memory row write is torn
so its arena slot reads back unwritten. The supervised execution path
(:mod:`repro.sweep.backends.supervise`) recovers from all three; this
module provides the pieces that make that recovery *testable*:

* :class:`FaultPlan` — a declarative, picklable plan of injected faults
  ("crash the worker running job 4, once; hang job 7, twice; corrupt
  arena slot 3"). It travels to workers through the existing
  :class:`~repro.sweep.backends.WorkerContext` hook and fires inside the
  supervised worker loop only — never in the parent, so result
  hydration and serial execution are immune by construction.
* :class:`Tolerance` — the supervisor's policy knobs: retry budget,
  per-job wall-clock timeout, backoff.

Each fault fires a bounded number of times, coordinated across worker
*processes* (a requeued job lands on a different worker) through a
spool directory of ``O_EXCL``-created marker files: the first ``times``
attempts to run the job observe the fault, every later attempt runs
clean. That determinism is the whole point — a recovered sweep can be
differential-tested byte-identical against a fault-free one.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigError

#: Exit code of a worker killed by an injected crash (visible in tests).
CRASH_EXIT_CODE = 86


def _normalize(spec) -> dict[int, int]:
    """``{index: times}`` from a mapping or an iterable of indices."""
    if spec is None:
        return {}
    if isinstance(spec, Mapping):
        out = {int(k): int(v) for k, v in spec.items()}
    else:
        out = {int(index): 1 for index in spec}
    for index, times in out.items():
        if index < 0 or times < 1:
            raise ConfigError(
                f"fault entries need index >= 0 and times >= 1, "
                f"got index={index} times={times}"
            )
    return out


@dataclass(frozen=True)
class FaultPlan:
    """Declarative injected faults, keyed by executed-job index.

    ``crash``/``hang``/``corrupt`` each accept an iterable of job
    indices (fire once per index) or an ``{index: times}`` mapping.
    ``spool`` is a directory (shared by every worker — a tmpdir) whose
    marker files count firings across processes and retries.
    """

    spool: str
    crash: Mapping[int, int] = field(default_factory=dict)
    hang: Mapping[int, int] = field(default_factory=dict)
    corrupt: Mapping[int, int] = field(default_factory=dict)
    hang_s: float = 60.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "crash", _normalize(self.crash))
        object.__setattr__(self, "hang", _normalize(self.hang))
        object.__setattr__(self, "corrupt", _normalize(self.corrupt))

    def _fire(self, kind: str, index: int, times: int) -> bool:
        """Atomically claim the next attempt marker; True while armed.

        Marker files are created ``O_EXCL`` so exactly one process wins
        each attempt number, no matter which worker the retried job
        lands on.
        """
        attempt = 0
        while True:
            path = os.path.join(self.spool, f"{kind}-{index}-{attempt}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                attempt += 1
                continue
            os.close(fd)
            return attempt < times

    def maybe_crash(self, index: int) -> None:
        """Kill this worker process if a crash fault is armed for ``index``.

        ``os._exit`` (not ``sys.exit``) — the point is an abrupt death
        with no cleanup, exactly what an OOM kill looks like from the
        supervisor's side.
        """
        times = self.crash.get(index)
        if times is not None and self._fire("crash", index, times):
            os._exit(CRASH_EXIT_CODE)

    def maybe_hang(self, index: int) -> None:
        """Sleep ``hang_s`` if a hang fault is armed for ``index``.

        With a supervisor timeout below ``hang_s`` the worker is killed
        mid-sleep; without one this degrades to a very slow job.
        """
        times = self.hang.get(index)
        if times is not None and self._fire("hang", index, times):
            time.sleep(self.hang_s)

    def maybe_corrupt(self, arena, index: int) -> bool:
        """Zero job ``index``'s arena slot if a corrupt fault is armed.

        Models a torn row write: the job ran, the worker reported it,
        but the slot reads back unwritten. Returns True when fired.
        """
        times = self.corrupt.get(index)
        if times is not None and self._fire("corrupt", index, times):
            arena.clear_slot(index)
            return True
        return False


@dataclass(frozen=True)
class Tolerance:
    """Supervisor policy: retries, timeout, backoff.

    Attributes:
        max_retries: extra attempts a job gets after its first failed
            one before being quarantined (0 = fail fast on the first
            crash/hang).
        job_timeout_s: per-job wall clock; a job running longer gets its
            worker killed and is retried, then recorded as a
            timeout-class row. ``None`` disables the timeout.
        retry_backoff_s: base of the exponential backoff before a failed
            job is requeued (``base * 2**(attempt-1)``, capped).
        poll_s: supervisor event-loop poll interval.
    """

    max_retries: int = 2
    job_timeout_s: float | None = None
    retry_backoff_s: float = 0.05
    poll_s: float = 0.02

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise ConfigError(
                f"job_timeout_s must be > 0, got {self.job_timeout_s}"
            )
        if self.retry_backoff_s < 0:
            raise ConfigError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before requeueing a job's ``attempt``-th retry."""
        return min(self.retry_backoff_s * (2 ** max(0, attempt - 1)), 2.0)


_ACTIVE_PLAN: FaultPlan | None = None


def install(plan: FaultPlan | None) -> None:
    """Set (or clear) this process's active fault plan.

    Called by :meth:`~repro.sweep.backends.WorkerContext.apply` in every
    process. Installation alone is inert: faults fire only where the
    supervised worker loop calls the ``maybe_*`` hooks, so a plan
    installed in the parent (the session applies its context locally
    too) can never crash or hang the parent.
    """
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan


def active_plan() -> FaultPlan | None:
    """The fault plan installed in this process, if any."""
    return _ACTIVE_PLAN
