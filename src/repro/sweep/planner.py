"""Adaptive provisioning-frontier planner: Section 8 sizing in log cost.

The paper's Section 8 question — how many queues and how much buffering
before a program class stops deadlocking? — is a *frontier* query: along
each (policy, queues) line of the provisioning grid, find the minimal
queue capacity whose run completes. Exhaustively sweeping the capacity
axis answers it in linear cost; this module answers it in logarithmic
cost where monotonicity licenses a binary search, and falls back to full
evaluation where it does not:

* **static policy** — run-time completion is monotone in capacity
  (buffering only relaxes blocking under a per-message static
  assignment; the property is hypothesis-pinned in
  ``tests/test_properties.py::test_buffering_never_hurts_static_completion``),
  so the planner bisects: probe the top capacity, probe the bottom,
  then binary-search the boundary — 2 + ceil(log2 n) probes instead of
  n;
* **fcfs** (and any policy not in :data:`MONOTONE_POLICIES`) — extra
  capacity can *introduce* a deadlock (the pinned PR 2 counterexample,
  ``test_fcfs_buffering_can_hurt_completion``: FCFS grants queues in
  arrival order and buffering reorders arrivals), so a bisection's
  invariant does not hold and the planner evaluates the whole line.
  The differential tests keep this fallback honest by reusing exactly
  that counterexample program.

Every probe the planner *does* run goes through the ordinary sweep
machinery — a :class:`~repro.sweep.plan.SweepPlan` per probe round,
executed by whichever backend the :class:`PlanSpec` names — and is
emitted as a standard :class:`~repro.sweep.summary.RunSummary` row whose
``index`` is the job's position in the *exhaustive* grid (policy-major,
then queues, then ascending capacity, exactly
:func:`repro.sweep.grid.sweep_jobs` order over the sorted capacity
axis). Reducers therefore fold planner rows unchanged, and a planner row
is byte-identical to the exhaustive grid's row at the same index
(simulations are deterministic) — which is what the differential harness
asserts. Checkpointing is the one sweep feature that does not compose:
probe rounds are data-dependent, so there is no fixed grid to fingerprint;
the planner rejects a request for it at the :class:`PlanSpec` layer by
simply not offering the knob.

Between probe rounds the planner re-uses neighboring-config analysis
deltas through the content-keyed analysis cache
(:mod:`repro.perf.analysis_cache`): message routes and competing-message
sets depend only on program x topology x router — never on queue
capacity — so the first probed capacity's entry donates them to every
later capacity's entry
(:meth:`~repro.perf.analysis_cache.AnalysisEntry.seed_capacity_independent`)
and each new probe point pays only for the capacity-*dependent*
artifacts (lookahead capacities, labeling) instead of a cold start. The
warm-up happens in the planner's process, so it benefits the default
in-process (serial) execution directly and multiprocess backends through
the shared disk tier when one is configured.

Entry points: build a :class:`PlanSpec` and call
:meth:`FrontierPlanner.run`, or use :func:`find_frontier` /
:func:`exhaustive_spec` (the forced-full-evaluation twin used for
differential testing and honest cost accounting).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.arch.config import ArrayConfig
from repro.errors import ConfigError
from repro.sweep.grid import sweep_label
from repro.sweep.jobs import SimJob
from repro.sweep.plan import SweepPlan, SweepSession
from repro.sweep.reducers import StreamReducer
from repro.sweep.summary import RunSummary

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.program import ArrayProgram
    from repro.witness.store import WitnessStore

#: Policies whose run-time completion is proven (and hypothesis-pinned)
#: monotone in queue capacity, licensing the binary search. FCFS is
#: excluded by the pinned counterexample; "ordered" is excluded
#: conservatively (its labeling is recomputed per capacity, and no
#: monotonicity property is pinned for it).
#:
#: This set also gates deadlock-witness pruning (:mod:`repro.witness`):
#: a stored certificate only generalizes across capacities when
#: completion is monotone in capacity (a witnessed deadlock then
#: dominates every smaller capacity, and its trace-replay band every
#: covered one), so ``WitnessStore.find`` and ``mine_witness`` both
#: refuse policies outside this set — FCFS rows are never pruned, by
#: construction rather than by store discipline.
MONOTONE_POLICIES = frozenset({"static"})

#: ``FrontierResult.mode`` values.
MODE_BISECT = "bisect"
MODE_EXHAUSTIVE = "exhaustive"


@dataclass(frozen=True)
class PlanSpec:
    """A frontier query: program, grid axes, execution knobs.

    The declarative layer over :class:`~repro.sweep.plan.SweepPlan` for
    frontier search. ``capacities`` is the axis to search (sorted
    ascending and deduplicated by the planner; duplicates are rejected
    so the exhaustive grid it is compared against is unambiguous).
    ``monotone_policies`` names the policies the planner may bisect —
    everything else is evaluated exhaustively; pass ``frozenset()``
    (see :func:`exhaustive_spec`) to force full evaluation everywhere.
    ``reducers`` are fed every executed row, in emission order, exactly
    as a sweep session would feed them.

    ``witness_store`` seeds each bisecting line's bounds from stored
    deadlock certificates (a witnessed deadlock at capacity ``c``
    dominates every capacity ``<= c`` under a monotone policy, so the
    bottom probe and part of the bracket are skipped) and rides along
    into every probe round's :class:`~repro.sweep.plan.SweepPlan`, so
    covered probes are answered from the store and fresh deadlocks are
    mined back into it.
    """

    program: "ArrayProgram"
    policies: Sequence[str] = ("static",)
    queues: Sequence[int] = (1,)
    capacities: Sequence[int] = (0,)
    registers: dict[str, dict[str, float | None]] | None = None
    reducers: Sequence[StreamReducer] = ()
    backend: str | None = None
    workers: int = 1
    chunk_size: int | None = None
    disk_cache: str | None = None
    monotone_policies: frozenset[str] = MONOTONE_POLICIES
    witness_store: "WitnessStore | None" = None


def exhaustive_spec(spec: PlanSpec) -> PlanSpec:
    """``spec`` with bisection disabled: every line fully evaluated.

    The planner run under this twin *is* the exhaustive grid — same
    jobs, same row indices — which makes it both the differential
    oracle (planner frontier must match it exactly) and the honest cost
    baseline (its ``jobs_executed`` equals the grid size).
    """
    return dataclasses.replace(spec, monotone_policies=frozenset())


@dataclass(frozen=True)
class FrontierResult:
    """One (policy, queues) line's answer.

    ``frontier_capacity`` is the minimal capacity on the axis whose run
    completed — ``None`` when no probed capacity completes. ``probes``
    holds only the capacities actually executed, ascending, with each
    row's outcome string; under :data:`MODE_EXHAUSTIVE` that is the
    whole axis, under :data:`MODE_BISECT` the O(log n) probe set.
    """

    policy: str
    queues: int
    mode: str
    frontier_capacity: int | None
    probes: tuple[tuple[int, str], ...]

    @property
    def jobs_executed(self) -> int:
        return len(self.probes)

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "queues": self.queues,
            "mode": self.mode,
            "frontier_capacity": self.frontier_capacity,
            "jobs_executed": self.jobs_executed,
            "probes": [
                {"capacity": cap, "outcome": outcome}
                for cap, outcome in self.probes
            ],
        }


@dataclass
class FrontierReport:
    """A full planner run: per-line frontiers plus every executed row.

    ``rows`` carry exhaustive-grid indices (see the module docstring),
    in emission order — round by round, within a round in job order.
    """

    lines: list[FrontierResult]
    rows: list[RunSummary]
    grid_jobs: int
    capacities: tuple[int, ...]
    #: Witness-store accounting (all 0 without a store): lines whose
    #: bisection bounds a certificate seeded, probe jobs answered from
    #: the store, and new certificates mined during probe rounds.
    witness_seeded_lines: int = 0
    witness_pruned: int = 0
    witness_mined: int = 0

    @property
    def jobs_executed(self) -> int:
        return len(self.rows)

    def frontier(self) -> dict[str, int | None]:
        """``{"<policy> q=<n>": minimal completing capacity or None}``."""
        return {
            f"{line.policy} q={line.queues}": line.frontier_capacity
            for line in self.lines
        }

    def as_dict(self) -> dict:
        return {
            "frontier": self.frontier(),
            "grid_jobs": self.grid_jobs,
            "jobs_executed": self.jobs_executed,
            "capacities": list(self.capacities),
            "witness_seeded_lines": self.witness_seeded_lines,
            "witness_pruned": self.witness_pruned,
            "witness_mined": self.witness_mined,
            "lines": [line.as_dict() for line in self.lines],
        }


class _LineSearch:
    """The per-line state machine: bisect phases or exhaustive sweep.

    Bisect invariant (requires completed-monotone-in-capacity): after
    the top and bottom probes, ``lo`` indexes a not-completed capacity
    and ``hi`` a completed one; each midpoint probe halves the bracket
    until they are adjacent and ``hi`` is the frontier.
    """

    __slots__ = (
        "policy", "queues", "line_index", "mode", "done",
        "frontier_idx", "outcomes", "seeded", "_phase", "_lo", "_hi", "_n",
    )

    def __init__(
        self, policy: str, queues: int, line_index: int, mode: str, n: int
    ) -> None:
        self.policy = policy
        self.queues = queues
        self.line_index = line_index
        self.mode = mode
        self.done = False
        self.frontier_idx: int | None = None
        self.outcomes: dict[int, str] = {}  # capacity index -> outcome
        self.seeded = False
        self._phase = "top"
        self._lo = 0
        self._hi = n - 1
        self._n = n

    def seed_known_deadlocked(self, cap_index: int) -> None:
        """Fold witness knowledge: capacities ``<= cap_index`` deadlock.

        Outcome-only dominance from a stored certificate under a
        monotone policy. Covering the whole axis settles the line with
        zero probes; otherwise the bottom probe is skipped (its answer
        is known not-completed) and the bisection bracket starts at the
        highest dominated index instead of 0.
        """
        if self.mode != MODE_BISECT or self.done:
            return
        if cap_index >= self._n - 1:
            # Even the top capacity is witnessed deadlocked: no probe
            # can complete, the frontier is known absent.
            self.frontier_idx = None
            self.done = True
            self.seeded = True
            return
        self._lo = max(self._lo, cap_index)
        self.seeded = True

    def next_probes(self) -> list[int]:
        """Capacity indices to execute this round (empty when done)."""
        if self.done:
            return []
        if self.mode == MODE_EXHAUSTIVE:
            return list(range(self._n))
        if self._phase == "top":
            return [self._n - 1]
        if self._phase == "bottom":
            return [0]
        return [(self._lo + self._hi) // 2]

    def record(self, index: int, outcome: str) -> None:
        """Fold one probe's outcome and advance the phase machine."""
        self.outcomes[index] = outcome
        if self.mode == MODE_EXHAUSTIVE:
            if len(self.outcomes) == self._n:
                completed = [
                    i for i, o in sorted(self.outcomes.items())
                    if o == "completed"
                ]
                self.frontier_idx = completed[0] if completed else None
                self.done = True
            return
        completed = outcome == "completed"
        if self._phase == "top":
            if not completed:
                # The most generous capacity fails: monotonicity says
                # everything below it fails too.
                self.frontier_idx = None
                self.done = True
            elif self._n == 1:
                self.frontier_idx = 0
                self.done = True
            elif self.seeded:
                # A witness already answered the bottom probe (the
                # dominated prefix cannot complete): go straight to
                # bisecting the remaining bracket.
                self._phase = "bisect"
                self._maybe_finish()
            else:
                self._phase = "bottom"
            return
        if self._phase == "bottom":
            if completed:
                self.frontier_idx = 0
                self.done = True
            else:
                self._phase = "bisect"
                self._maybe_finish()
            return
        mid = (self._lo + self._hi) // 2
        if completed:
            self._hi = mid
        else:
            self._lo = mid
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self._hi - self._lo == 1:
            self.frontier_idx = self._hi
            self.done = True

    def result(self, capacities: tuple[int, ...]) -> FrontierResult:
        return FrontierResult(
            policy=self.policy,
            queues=self.queues,
            mode=self.mode,
            frontier_capacity=(
                capacities[self.frontier_idx]
                if self.frontier_idx is not None
                else None
            ),
            probes=tuple(
                (capacities[i], outcome)
                for i, outcome in sorted(self.outcomes.items())
            ),
        )


class FrontierPlanner:
    """Executes a :class:`PlanSpec`: bisect where sound, sweep elsewhere.

    Probe rounds batch one pending probe per bisecting line (plus, in
    the first round, every exhaustive line's whole axis) into a single
    :class:`~repro.sweep.plan.SweepPlan`, so line-level parallelism is
    available to multiprocess backends; errors are collected
    (``on_error="collect"``) — an infeasible corner is a not-completed
    data point, exactly as in an exhaustive sweep.
    """

    def __init__(self, spec: PlanSpec) -> None:
        if not spec.policies:
            raise ConfigError("frontier search needs at least one policy")
        if not spec.queues:
            raise ConfigError("frontier search needs at least one queues value")
        if not spec.capacities:
            raise ConfigError("frontier search needs a capacity axis")
        if len(set(spec.capacities)) != len(tuple(spec.capacities)):
            raise ConfigError(
                "capacity axis contains duplicates; the exhaustive grid it "
                "is compared against would be ambiguous"
            )
        self.spec = spec
        self.capacities: tuple[int, ...] = tuple(sorted(spec.capacities))
        self._analyzed: set[int] = set()  # capacities with a warm entry
        self._witness_pruned = 0
        self._witness_mined = 0

    # -- grid geometry ----------------------------------------------------

    def _lines(self) -> list[_LineSearch]:
        spec = self.spec
        lines = []
        for pol in spec.policies:
            for nq in spec.queues:
                mode = (
                    MODE_BISECT
                    if pol in spec.monotone_policies
                    else MODE_EXHAUSTIVE
                )
                lines.append(
                    _LineSearch(pol, nq, len(lines), mode, len(self.capacities))
                )
        return lines

    def _grid_index(self, line: _LineSearch, cap_index: int) -> int:
        """Position in the exhaustive policy x queues x capacity grid."""
        return line.line_index * len(self.capacities) + cap_index

    # -- analysis warm-up -------------------------------------------------

    def _warm_analysis(self, probe_caps: Sequence[int]) -> None:
        """Seed new capacities' cache entries from an already-probed one.

        Routes and competing sets are capacity-independent, so the
        donor entry (the first capacity ever probed) hands them to every
        later probe point and only the capacity-dependent artifacts are
        recomputed. Skipped entirely for programs whose topology/router
        cannot be content-fingerprinted (lookup returns ``None``).
        """
        from repro.arch.routing import default_router
        from repro.arch.topology import ExplicitLinear
        from repro.perf.analysis_cache import GLOBAL_ANALYSIS_CACHE

        fresh = [c for c in probe_caps if c not in self._analyzed]
        if not fresh:
            return
        program = self.spec.program
        topology = ExplicitLinear(tuple(program.cells))
        router = default_router(topology)
        donor = None
        if self._analyzed:
            donor = GLOBAL_ANALYSIS_CACHE.lookup(
                program,
                topology,
                router,
                ArrayConfig(queue_capacity=next(iter(self._analyzed))),
            )
        for cap in fresh:
            if donor is not None:
                entry = GLOBAL_ANALYSIS_CACHE.lookup(
                    program, topology, router, ArrayConfig(queue_capacity=cap)
                )
                if entry is not None:
                    entry.seed_capacity_independent(donor)
            self._analyzed.add(cap)

    # -- execution --------------------------------------------------------

    def _run_round(
        self, probes: list[tuple[_LineSearch, int]]
    ) -> list[RunSummary]:
        spec = self.spec
        jobs = [
            SimJob(
                spec.program,
                config=ArrayConfig(
                    queues_per_link=line.queues,
                    queue_capacity=self.capacities[cap_index],
                ),
                policy=line.policy,
                registers=spec.registers,
            )
            for line, cap_index in probes
        ]
        self._warm_analysis([job.config.queue_capacity for job in jobs])
        plan = SweepPlan(
            jobs=jobs,
            backend=spec.backend,
            workers=spec.workers,
            chunk_size=spec.chunk_size,
            on_error="collect",
            disk_cache=spec.disk_cache,
            witness_store=spec.witness_store,
        )
        session = SweepSession(plan)
        round_rows = list(session.stream())
        self._witness_pruned += session.witness_pruned
        self._witness_mined += session.witness_mined
        return round_rows

    def _seed_from_witnesses(self, lines: "list[_LineSearch]") -> int:
        """Fold stored certificates into each bisecting line's bounds.

        A certificate at capacity ``c`` proves (by monotonicity) that
        every capacity ``<= c`` deadlocks, so the line's bottom probe —
        and part of its bracket — is already answered. Returns the
        number of lines seeded. Outcome-only knowledge: no row is
        synthesized here, the grid's dominated rows simply stop being
        interesting to a frontier query.
        """
        store = self.spec.witness_store
        if store is None:
            return 0
        from repro.witness import witness_scope

        seeded = 0
        for line in lines:
            if line.mode != MODE_BISECT:
                continue
            representative = SimJob(
                self.spec.program,
                config=ArrayConfig(queues_per_link=line.queues),
                policy=line.policy,
                registers=self.spec.registers,
            )
            bound = store.monotone_bound(witness_scope(representative))
            if bound is None:
                continue
            dominated = [
                i for i, cap in enumerate(self.capacities) if cap <= bound
            ]
            if dominated:
                line.seed_known_deadlocked(dominated[-1])
                seeded += 1
        return seeded

    def run(self) -> FrontierReport:
        """Execute the search; every executed row is in the report."""
        lines = self._lines()
        self._witness_pruned = 0
        self._witness_mined = 0
        seeded = self._seed_from_witnesses(lines)
        reducers = tuple(self.spec.reducers)
        rows: list[RunSummary] = []
        while True:
            probes = [
                (line, cap_index)
                for line in lines
                for cap_index in line.next_probes()
            ]
            if not probes:
                break
            for (line, cap_index), row in zip(probes, self._run_round(probes)):
                grid_row = dataclasses.replace(
                    row, index=self._grid_index(line, cap_index)
                )
                line.record(cap_index, grid_row.outcome)
                for reducer in reducers:
                    reducer.update(grid_row)
                rows.append(grid_row)
        return FrontierReport(
            lines=[line.result(self.capacities) for line in lines],
            rows=rows,
            grid_jobs=(
                len(self.spec.policies)
                * len(self.spec.queues)
                * len(self.capacities)
            ),
            capacities=self.capacities,
            witness_seeded_lines=seeded,
            witness_pruned=self._witness_pruned,
            witness_mined=self._witness_mined,
        )


def find_frontier(
    program: "ArrayProgram",
    policies: Sequence[str] = ("static",),
    queues: Sequence[int] = (1,),
    capacities: Sequence[int] = (0,),
    **knobs,
) -> FrontierReport:
    """One-call frontier search (see :class:`PlanSpec` for the knobs)."""
    return FrontierPlanner(
        PlanSpec(
            program,
            policies=policies,
            queues=queues,
            capacities=capacities,
            **knobs,
        )
    ).run()


def probe_label(row: RunSummary) -> str:
    """The grid label of one executed probe row (for CLI tables)."""
    return sweep_label(row.policy, row.queues, row.capacity)
