"""Streaming reducers: O(1)-state aggregates over RunSummary rows.

Every reducer implements three methods:

* ``update(row)`` — fold one :class:`~repro.sweep.summary.RunSummary`
  into the aggregate (called in job order by
  :class:`~repro.sweep.plan.SweepSession`);
* ``merge(other)`` — absorb another reducer of the same type and
  parameters, so partial aggregates computed independently (worker-local
  reduction inside a backend, or sharded sweeps run in separate
  sessions/processes) combine into one. For the counting reducers the
  merge is *exact*: merged state equals the single-pass state over the
  concatenated rows, regardless of how the rows were partitioned. For
  :class:`QuantileReducer` the merge combines t-digest centroids — exact
  while the digest is uncompressed (small inputs), within the digest's
  rank-error bound beyond that;
* ``summary()`` — a JSON-able dict of the aggregate.

``name`` labels the reducer in CLI output and JSON payloads.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigError
from repro.sweep.summary import RunSummary


class StreamReducer:
    """Base class for O(1)-state streaming aggregators.

    Subclasses override :meth:`update` (called once per
    :class:`~repro.sweep.summary.RunSummary`, in job order),
    :meth:`merge` (absorb a same-typed reducer, for worker-local or
    sharded reduction) and :meth:`summary` (a JSON-able dict of the
    aggregate). ``name`` labels the reducer in CLI output.
    """

    name = "reducer"

    def update(self, row: RunSummary) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def merge(self, other: "StreamReducer") -> None:  # pragma: no cover
        raise NotImplementedError

    def summary(self) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    def snapshot_state(self) -> dict:
        """This reducer's exact state, for checkpoint serialization.

        The default — a shallow copy of ``__dict__`` — is exact for
        every built-in reducer because checkpoints pickle the snapshot
        immediately (the pickle is the deep copy). Restoring a snapshot
        and folding the remaining rows, in order, reproduces the
        uninterrupted run's state bit for bit; this, not ``merge`` (whose
        t-digest recompression is only rank-error-exact), is why resumed
        sweeps report byte-identical summaries.
        """
        return dict(self.__dict__)

    def restore_state(self, state: dict) -> None:
        """Overwrite this reducer's state in place with a snapshot.

        In place matters: callers hold references to the reducer objects
        they passed into the plan (the CLI prints their summaries), so a
        resume must not swap the objects out from under them.
        """
        self.__dict__.clear()
        self.__dict__.update(state)

    def _require_mergeable(self, other: "StreamReducer") -> None:
        if type(other) is not type(self):
            raise ConfigError(
                f"cannot merge {type(other).__name__} into "
                f"{type(self).__name__}"
            )


def merge_reducers(
    into: StreamReducer, *others: StreamReducer
) -> StreamReducer:
    """Fold ``others`` into ``into`` (left to right) and return it."""
    for other in others:
        into.merge(other)
    return into


class CompletedCount(StreamReducer):
    """Counts per outcome: completed / deadlock / timeout / infeasible."""

    name = "outcomes"

    def __init__(self) -> None:
        self.total = 0
        self.completed = 0
        self.deadlocked = 0
        self.timed_out = 0
        self.infeasible = 0

    def update(self, row: RunSummary) -> None:
        self.total += 1
        if row.error_kind is not None:
            self.infeasible += 1
        elif row.completed:
            self.completed += 1
        elif row.deadlocked:
            self.deadlocked += 1
        else:
            self.timed_out += 1

    def merge(self, other: StreamReducer) -> None:
        self._require_mergeable(other)
        self.total += other.total
        self.completed += other.completed
        self.deadlocked += other.deadlocked
        self.timed_out += other.timed_out
        self.infeasible += other.infeasible

    def summary(self) -> dict:
        return {
            "total": self.total,
            "completed": self.completed,
            "deadlock": self.deadlocked,
            "timeout": self.timed_out,
            "infeasible": self.infeasible,
        }


class MakespanHistogram(StreamReducer):
    """Histogram of completed-run makespans in fixed-width buckets."""

    name = "makespan"

    def __init__(self, bucket_width: int = 16) -> None:
        if bucket_width < 1:
            raise ConfigError(f"bucket_width must be >= 1, got {bucket_width}")
        self.bucket_width = bucket_width
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total_time = 0
        self.min_time: int | None = None
        self.max_time: int | None = None

    def update(self, row: RunSummary) -> None:
        if not row.completed:
            return
        self.count += 1
        self.total_time += row.time
        bucket = (row.time // self.bucket_width) * self.bucket_width
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        if self.min_time is None or row.time < self.min_time:
            self.min_time = row.time
        if self.max_time is None or row.time > self.max_time:
            self.max_time = row.time

    def merge(self, other: StreamReducer) -> None:
        self._require_mergeable(other)
        if other.bucket_width != self.bucket_width:
            raise ConfigError(
                f"cannot merge histograms with bucket widths "
                f"{self.bucket_width} and {other.bucket_width}"
            )
        self.count += other.count
        self.total_time += other.total_time
        for bucket, n in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + n
        if other.min_time is not None and (
            self.min_time is None or other.min_time < self.min_time
        ):
            self.min_time = other.min_time
        if other.max_time is not None and (
            self.max_time is None or other.max_time > self.max_time
        ):
            self.max_time = other.max_time

    def summary(self) -> dict:
        return {
            "bucket_width": self.bucket_width,
            "count": self.count,
            "min": self.min_time,
            "max": self.max_time,
            "mean": (self.total_time / self.count) if self.count else None,
            "histogram": dict(sorted(self.buckets.items())),
        }


class DeadlockRateByConfig(StreamReducer):
    """Deadlock rate grouped by (policy, queues, capacity).

    Infeasible corners never simulated are excluded from the
    denominator — the rate answers "of the runs that executed under
    this config, how many deadlocked".
    """

    name = "deadlock-rate"

    def __init__(self) -> None:
        self.groups: dict[tuple[str, int, int], list[int]] = {}

    def update(self, row: RunSummary) -> None:
        if row.error_kind is not None:
            return
        key = (row.policy, row.queues, row.capacity)
        cell = self.groups.setdefault(key, [0, 0])
        cell[1] += 1
        if row.deadlocked:
            cell[0] += 1

    def merge(self, other: StreamReducer) -> None:
        self._require_mergeable(other)
        for key, (deadlocks, runs) in other.groups.items():
            cell = self.groups.setdefault(key, [0, 0])
            cell[0] += deadlocks
            cell[1] += runs

    def summary(self) -> dict:
        return {
            f"{policy} q={queues} cap={capacity}": {
                "deadlocks": deadlocks,
                "runs": runs,
                "rate": deadlocks / runs,
            }
            for (policy, queues, capacity), (deadlocks, runs) in sorted(
                self.groups.items()
            )
        }


class PerConfigMakespan(StreamReducer):
    """Makespan statistics of completed runs, per (policy, queues, cap).

    The provisioning companion to :class:`DeadlockRateByConfig`: once a
    config is known not to deadlock, this answers "and how fast does it
    run" — count, min, mean, max completion time per grid point, with an
    exact merge (plain sums and extrema).
    """

    name = "per-config-makespan"

    def __init__(self) -> None:
        # key -> [count, total_time, min_time, max_time]
        self.groups: dict[tuple[str, int, int], list[int]] = {}

    def update(self, row: RunSummary) -> None:
        if not row.completed:
            return
        key = (row.policy, row.queues, row.capacity)
        cell = self.groups.get(key)
        if cell is None:
            self.groups[key] = [1, row.time, row.time, row.time]
            return
        cell[0] += 1
        cell[1] += row.time
        if row.time < cell[2]:
            cell[2] = row.time
        if row.time > cell[3]:
            cell[3] = row.time

    def merge(self, other: StreamReducer) -> None:
        self._require_mergeable(other)
        for key, (count, total, lo, hi) in other.groups.items():
            cell = self.groups.get(key)
            if cell is None:
                self.groups[key] = [count, total, lo, hi]
                continue
            cell[0] += count
            cell[1] += total
            if lo < cell[2]:
                cell[2] = lo
            if hi > cell[3]:
                cell[3] = hi

    def summary(self) -> dict:
        return {
            f"{policy} q={queues} cap={capacity}": {
                "count": count,
                "min": lo,
                "mean": total / count,
                "max": hi,
            }
            for (policy, queues, capacity), (count, total, lo, hi) in sorted(
                self.groups.items()
            )
        }


def _quantile_label(q: float) -> str:
    """``0.5 -> "p50"``, ``0.999 -> "p99.9"`` (float-noise tolerant)."""
    return "p" + format(round(q * 100, 6), ".10g")


def validate_quantile_labels(fractions: Sequence[float]) -> None:
    """Reject distinct fractions whose summary labels would collide.

    ``_quantile_label`` rounds to 6 decimal places of percent, so two
    requested quantiles closer than 5e-9 (e.g. ``0.5`` and
    ``0.5000000004``) would both print as ``p50`` and one would silently
    overwrite the other in the summary dict. That is a caller error —
    surfaced here rather than as a vanished dict key.
    """
    by_label: dict[str, float] = {}
    for q in fractions:
        label = _quantile_label(q)
        seen = by_label.setdefault(label, q)
        if seen != q:
            raise ConfigError(
                f"quantiles {seen!r} and {q!r} both format as {label!r}; "
                "their summary entries would collide"
            )


def parse_quantiles(raw: str) -> tuple[float, ...]:
    """Parse ``"p50,p95,p99"`` (or bare ``"50,95"``) into fractions.

    Exact duplicates (``"p50,p50"``, or ``"p50,50"`` after
    normalization) are dropped, keeping first occurrence order; distinct
    quantiles that would collide to one summary label are rejected (see
    :func:`validate_quantile_labels`).
    """
    fractions: list[float] = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        body = token[1:] if token[0] in "pP" else token
        try:
            percent = float(body)
        except ValueError:
            raise ConfigError(
                f"quantiles expect p-labels like p50 or p99.9, got {token!r}"
            ) from None
        if not 0.0 < percent <= 100.0:
            raise ConfigError(
                f"quantile {token!r} out of range (0, 100]"
            )
        # Round away the division noise (99.9/100 != 0.999 in floats) so
        # labels round-trip: p99.9 -> 0.999 -> "p99.9".
        fraction = round(percent / 100.0, 12)
        if fraction not in fractions:
            fractions.append(fraction)
    if not fractions:
        raise ConfigError("no quantiles given")
    validate_quantile_labels(fractions)
    return tuple(fractions)


class QuantileReducer(StreamReducer):
    """Streaming makespan quantiles via a merging t-digest.

    Completed-run makespans accumulate as weighted centroids compressed
    with the usual :math:`k_1` scale function (Dunning's merging
    digest): centroid weights are tight near the tails and loose near
    the median, so p95/p99 — the provisioning quantiles — stay accurate
    at a bounded memory cost of O(``compression``) centroids no matter
    how many runs stream through.

    While fewer than ~``compression``/π values have been absorbed, every
    centroid is a single observation and quantiles (and merges) are
    *exact*; past that the estimate carries the digest's usual rank
    error of a few parts per ``compression``. ``merge`` combines two
    digests by pooling centroids and recompressing — the mechanism that
    lets backends or sharded sweeps reduce locally and combine.
    """

    name = "quantiles"

    def __init__(
        self,
        quantiles: tuple[float, ...] = (0.5, 0.95, 0.99),
        *,
        compression: int = 200,
    ) -> None:
        if compression < 10:
            raise ConfigError(
                f"compression must be >= 10, got {compression}"
            )
        for q in quantiles:
            if not 0.0 <= q <= 1.0:
                raise ConfigError(f"quantile {q!r} out of range [0, 1]")
        validate_quantile_labels(quantiles)
        self.quantiles = tuple(quantiles)
        self.compression = compression
        self.count = 0
        self.min_time: int | None = None
        self.max_time: int | None = None
        self._centroids: list[tuple[float, float]] = []  # (mean, weight)
        self._buffer: list[float] = []
        self._buffer_cap = 4 * compression

    def update(self, row: RunSummary) -> None:
        if not row.completed:
            return
        self.add(row.time)

    def add(self, value: float) -> None:
        """Absorb one observation (exposed for non-row use)."""
        self.count += 1
        if self.min_time is None or value < self.min_time:
            self.min_time = value
        if self.max_time is None or value > self.max_time:
            self.max_time = value
        self._buffer.append(value)
        if len(self._buffer) >= self._buffer_cap:
            self._compress()

    def _k(self, q: float) -> float:
        # k_1 scale function: fine resolution at the tails.
        return (self.compression / (2 * math.pi)) * math.asin(2 * q - 1)

    def _compress(self, force: bool = False) -> None:
        # The lazy guard is only sound while _centroids is known sorted;
        # merge() concatenates two sorted lists (not sorted overall) and
        # must force a pass.
        if (
            not force
            and not self._buffer
            and len(self._centroids) <= self.compression
        ):
            return
        pending = self._centroids + [(v, 1.0) for v in self._buffer]
        self._buffer = []
        if not pending:
            return
        pending.sort()
        total = sum(w for _m, w in pending)
        merged: list[tuple[float, float]] = []
        cur_mean, cur_w = pending[0]
        w_before = 0.0  # weight strictly left of the current centroid
        k_lo = self._k(0.0)
        for mean, w in pending[1:]:
            q_hi = (w_before + cur_w + w) / total
            if self._k(q_hi) - k_lo <= 1.0:
                # Weighted-mean absorb keeps the digest deterministic:
                # pending is sorted, so the fold order is canonical.
                cur_mean += (mean - cur_mean) * (w / (cur_w + w))
                cur_w += w
            else:
                merged.append((cur_mean, cur_w))
                w_before += cur_w
                k_lo = self._k(w_before / total)
                cur_mean, cur_w = mean, w
        merged.append((cur_mean, cur_w))
        self._centroids = merged

    def merge(self, other: StreamReducer) -> None:
        self._require_mergeable(other)
        if other.compression != self.compression:
            raise ConfigError(
                f"cannot merge digests with compressions "
                f"{self.compression} and {other.compression}"
            )
        self.count += other.count
        if other.min_time is not None and (
            self.min_time is None or other.min_time < self.min_time
        ):
            self.min_time = other.min_time
        if other.max_time is not None and (
            self.max_time is None or other.max_time > self.max_time
        ):
            self.max_time = other.max_time
        self._centroids = self._centroids + other._centroids
        self._buffer = self._buffer + other._buffer
        self._compress(force=True)

    def quantile(self, q: float) -> float | None:
        """The estimated ``q``-quantile of absorbed values, or ``None``.

        Interpolates between centroid midpoints: centroid *i* of weight
        :math:`w_i` sits at cumulative rank
        :math:`\\sum_{j<i} w_j + w_i/2`; ranks outside the first/last
        midpoint clamp to the exact tracked min/max.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile {q!r} out of range [0, 1]")
        if self.count == 0:
            return None
        self._compress()
        cents = self._centroids
        total = float(self.count)
        target = q * total
        cum = 0.0
        prev_mid = 0.0
        prev_mean = float(self.min_time)
        for mean, w in cents:
            mid = cum + w / 2.0
            if target <= mid:
                if mid == prev_mid:
                    value = mean
                else:
                    frac = (target - prev_mid) / (mid - prev_mid)
                    value = prev_mean + (mean - prev_mean) * frac
                return min(max(value, self.min_time), self.max_time)
            cum += w
            prev_mid = mid
            prev_mean = mean
        return float(self.max_time)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "min": self.min_time,
            "max": self.max_time,
            "quantiles": {
                _quantile_label(q): self.quantile(q) for q in self.quantiles
            },
        }
