"""Flat per-run summary rows: what crosses process boundaries.

A :class:`RunSummary` is one job's outcome reduced to a constant-size
row — never the full :class:`~repro.sim.result.SimulationResult` with
its traces and register files. Rows are what streaming reducers consume,
what the ``shm`` backend encodes into its shared-memory arena, and what
every backend must reproduce byte-identically for the same job list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.arch.config import ArrayConfig
from repro.sweep.jobs import BatchError, SimJob

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.sim.result import SimulationResult


@dataclass(frozen=True)
class RunSummary:
    """One job's outcome, reduced to a flat constant-size row.

    This is what crosses the pool pipe (or the shared-memory arena) and
    what reducers see — never the full
    :class:`~repro.sim.result.SimulationResult` with its traces and
    register files.
    """

    index: int
    completed: bool
    deadlocked: bool
    timed_out: bool
    time: int
    events: int
    words: int
    policy: str
    queues: int
    capacity: int
    error_kind: str | None = None
    error: str | None = None

    @property
    def outcome(self) -> str:
        """``completed`` / ``deadlock`` / ``timeout`` / ``infeasible``."""
        if self.error_kind is not None:
            return "infeasible"
        if self.completed:
            return "completed"
        if self.deadlocked:
            return "deadlock"
        return "timeout"


def summarize_result(
    index: int, job: SimJob, result: "SimulationResult | BatchError"
) -> RunSummary:
    """Flatten one job's result into a :class:`RunSummary` row."""
    config = job.config or ArrayConfig()
    if isinstance(result, BatchError):
        return RunSummary(
            index=index,
            completed=False,
            deadlocked=False,
            timed_out=False,
            time=0,
            events=0,
            words=0,
            policy=job.policy,
            queues=config.queues_per_link,
            capacity=config.queue_capacity,
            error_kind=result.kind,
            error=result.error,
        )
    return RunSummary(
        index=index,
        completed=result.completed,
        deadlocked=result.deadlocked,
        timed_out=result.timed_out,
        time=result.time,
        events=result.events,
        words=result.words_transferred,
        policy=job.policy,
        queues=config.queues_per_link,
        capacity=config.queue_capacity,
    )


def timeout_row(index: int, job: SimJob, reason: str) -> RunSummary:
    """A timeout-class row for a job killed by the wall-clock supervisor.

    A hung simulation corner is data, same as a deadlock: the row's
    ``outcome`` is ``"timeout"`` (``timed_out`` set, no ``error_kind``,
    so it lands in the same bucket as a ``max_time`` expiry) and the
    kill reason rides along in ``error`` for forensics.
    """
    config = job.config or ArrayConfig()
    return RunSummary(
        index=index,
        completed=False,
        deadlocked=False,
        timed_out=True,
        time=0,
        events=0,
        words=0,
        policy=job.policy,
        queues=config.queues_per_link,
        capacity=config.queue_capacity,
        error=reason,
    )
