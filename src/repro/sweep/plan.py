"""Sweep plans and sessions: declare what to run, pick how to run it.

A :class:`SweepPlan` is a declarative bundle — jobs, optional grid
labels, streaming reducers, backend choice and execution knobs. A
:class:`SweepSession` validates it, resolves the execution backend and
runs it in one of two shapes:

* :meth:`SweepSession.stream` — lazily yield one
  :class:`~repro.sweep.summary.RunSummary` per job, in job order,
  feeding every reducer along the way. Full results never accumulate.
* :meth:`SweepSession.run` — eagerly execute everything and return a
  :class:`SweepOutcome` whose :class:`ResultHandle` objects expose the
  full per-job results: materialized in place for the serial and pool
  backends, hydrated on demand (a deterministic in-parent re-execution
  against the warm analysis cache) for the ``shm`` backend.

Reducers are always folded in the parent, in job order, so their
summaries are byte-identical no matter which backend ran the jobs; the
reducers' ``merge`` contract additionally lets *separate* sessions — a
sweep sharded over machines or sessions — combine their aggregates.

:func:`simulate_many` and :func:`simulate_stream` are the long-standing
public entry points, now thin shims over a plan + session.
"""

from __future__ import annotations

import dataclasses
import sys
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.errors import CheckpointError, ConfigError
from repro.sweep.backends import (
    ExecutionBackend,
    FaultPlan,
    JobRecord,
    Tolerance,
    WorkerContext,
    get_backend,
)
from repro.sweep.jobs import (
    BatchError,
    SimJob,
    default_chunk_size,
    normalize_jobs,
    run_job,
    witness_row,
)
from repro.sweep.reducers import StreamReducer
from repro.sweep.summary import RunSummary

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.program import ArrayProgram
    from repro.arch.config import ArrayConfig
    from repro.sim.result import SimulationResult
    from repro.witness.store import WitnessStore

_VALID_ON_ERROR = ("raise", "collect")


@dataclass(frozen=True)
class SweepPlan:
    """Everything a sweep needs: jobs, labels, reducers, backend, knobs.

    ``jobs`` may be any iterable (a lazy generator feeds
    :meth:`SweepSession.stream` without materializing — on every
    backend, the ``shm`` arena included, which grows and retires
    segments behind the in-flight window; :meth:`SweepSession.run` and
    fault-tolerant execution materialize it). ``backend`` ``None``
    resolves to ``serial`` for ``workers == 1`` and ``pool`` otherwise.

    Fault tolerance is opt-in: setting any of ``job_timeout_s``,
    ``max_retries`` or ``fault_plan`` routes the multiprocess backends
    through the supervised executor
    (:mod:`repro.sweep.backends.supervise`) — crash recovery, bounded
    retries, per-job wall-clock timeouts. ``checkpoint`` names a file
    for periodic atomic progress snapshots
    (:mod:`repro.sweep.checkpoint`); with ``resume`` a sweep restarted
    against an existing checkpoint skips finished jobs and its reducers
    report byte-identically to an uninterrupted run. Checkpointing is a
    streaming feature: :meth:`SweepSession.run` /
    :meth:`SweepSession.iter_handles` reject it.

    ``witness_store`` attaches a deadlock-witness store
    (:class:`~repro.witness.store.WitnessStore`): each job is checked
    against the store before dispatch and, when a stored certificate
    covers it row-exactly, its deadlock row is synthesized
    (:func:`~repro.sweep.jobs.witness_row`) instead of simulated —
    counted in :attr:`SweepSession.witness_pruned`. With
    ``witness_mine`` (the default), deadlocked results that come back
    attached to records (always on the serial backend, on eager
    full-result backends under :meth:`SweepSession.iter_handles`) are
    mined into new certificates — and multiprocess workers mine their
    own deadlocks in-process, shipping compact certificate dicts on
    each record, so summary-only ``pool``/``shm`` streams warm the
    store at full speed too. Only monotone policies are ever pruned
    or mined (FCFS is exempt by construction — see
    :mod:`repro.witness.certificate`); composing with ``checkpoint`` is
    safe because pruned jobs are marked done like simulated ones and
    the grid fingerprint does not depend on the store.
    """

    jobs: Iterable[SimJob]
    labels: Sequence[str] | None = None
    reducers: Sequence[StreamReducer] = ()
    backend: str | None = None
    workers: int = 1
    chunk_size: int | None = None
    on_error: str = "collect"
    disk_cache: str | None = None
    job_timeout_s: float | None = None
    max_retries: int | None = None
    retry_backoff_s: float = 0.05
    fault_plan: FaultPlan | None = None
    checkpoint: str | None = None
    checkpoint_every: int = 64
    resume: bool = False
    witness_store: "WitnessStore | None" = None
    witness_mine: bool = True


_UNSET = object()


class ResultHandle:
    """One job's full result, materialized or hydratable on demand.

    ``summary`` is always present (the flat
    :class:`~repro.sweep.summary.RunSummary` row). :meth:`result`
    returns the full :class:`~repro.sim.result.SimulationResult` (or
    :class:`~repro.sweep.jobs.BatchError`): backends that shipped the
    full result hand it over directly; the ``shm`` backend instead
    re-executes the job in-parent on first access — simulations are
    deterministic and the analysis cache is warm, so hydration is exact
    and cheap relative to ever having pickled the result through a pipe.
    """

    __slots__ = ("summary", "label", "_job", "_collect_errors", "_result")

    def __init__(
        self,
        summary: RunSummary,
        job: SimJob,
        collect_errors: bool,
        result: "SimulationResult | BatchError | None | object" = _UNSET,
        label: str | None = None,
    ) -> None:
        self.summary = summary
        self.label = label
        self._job = job
        self._collect_errors = collect_errors
        self._result = result

    @property
    def hydrated(self) -> bool:
        """Whether :meth:`result` already holds a materialized result."""
        return self._result is not _UNSET

    def result(self) -> "SimulationResult | BatchError":
        """The full result, re-executing the job on first access."""
        if self._result is _UNSET:
            self._result = run_job(self._job, self._collect_errors)
        return self._result


@dataclass
class SweepOutcome:
    """An eagerly executed sweep: rows, result handles, fed reducers."""

    rows: list[RunSummary]
    handles: list[ResultHandle]
    reducers: tuple[StreamReducer, ...]
    labels: list[str] | None = None

    def results(self) -> "list[SimulationResult | BatchError]":
        """Every job's full result, hydrating where necessary."""
        return [handle.result() for handle in self.handles]

    def reducer_summaries(self) -> dict[str, dict]:
        """``{reducer.name: reducer.summary()}`` for every reducer."""
        return {reducer.name: reducer.summary() for reducer in self.reducers}


class SweepSession:
    """Validates a :class:`SweepPlan` and executes it."""

    #: The exception that prevented the final checkpoint snapshot of a
    #: checkpointed stream, or ``None``. Always set when the final save
    #: fails — even on the interpreter-shutdown path where raising is
    #: unsafe — so a caller holding the session can always detect a
    #: stale checkpoint.
    checkpoint_error: BaseException | None

    #: Jobs answered from the witness store instead of simulated, and
    #: new certificates mined from this session's deadlocked results.
    #: Both stay 0 when ``plan.witness_store`` is ``None``.
    witness_pruned: int
    witness_mined: int

    def __init__(self, plan: SweepPlan) -> None:
        self.checkpoint_error = None
        self.witness_pruned = 0
        self.witness_mined = 0
        if plan.on_error not in _VALID_ON_ERROR:
            raise ConfigError(
                f"on_error must be 'raise' or 'collect', got {plan.on_error!r}"
            )
        if plan.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {plan.workers}")
        if plan.chunk_size is not None and plan.chunk_size < 1:
            raise ConfigError(
                f"chunk_size must be >= 1, got {plan.chunk_size}"
            )
        if plan.checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, got {plan.checkpoint_every}"
            )
        if plan.resume and plan.checkpoint is None:
            raise ConfigError("resume=True requires a checkpoint path")
        self.plan = plan
        self.backend: ExecutionBackend = get_backend(
            plan.backend
            if plan.backend is not None
            else ("serial" if plan.workers == 1 else "pool")
        )
        # Constructing the Tolerance up front validates the knobs
        # (negative retries, non-positive timeouts) at session creation.
        self.tolerance = self._make_tolerance()
        multiprocess = self.backend.name != "serial"
        # Worker-side mining: multiprocess workers hold each full result
        # in-process anyway, so with a store attached they normalize
        # deadlocks into compact certificates locally and the parent
        # merges them (see _witness_records). The serial backend ships
        # full results, so the parent mines those directly instead.
        mine_workers = (
            multiprocess
            and plan.witness_store is not None
            and plan.witness_mine
        )
        shm_name: str | None = None
        if multiprocess:
            # Publish the parent's warm analyses into the shared-memory
            # tier so workers resolve fingerprints with no filesystem
            # I/O. Best-effort: ensure_shm_cache returns None when the
            # tier is disabled or /dev/shm is unusable.
            from repro.perf.shm_cache import ensure_shm_cache

            shm_name = ensure_shm_cache()
            if shm_name is not None:
                from repro.perf.analysis_cache import GLOBAL_ANALYSIS_CACHE

                GLOBAL_ANALYSIS_CACHE.publish_shm()
        self.ctx = WorkerContext.capture(
            plan.disk_cache,
            plan.fault_plan,
            mine_witnesses=mine_workers,
            shm_cache=shm_name,
        )
        # The parent applies the context too: in-process execution and
        # result hydration must see the same disk tier as the workers.
        # (Fault plans are inert outside the supervised worker loop, so
        # applying one here can never crash or hang the parent.)
        self.ctx.apply()

    def _make_tolerance(self) -> Tolerance | None:
        """Supervisor policy, or None to keep the legacy fast paths.

        Supervision engages when any fault-tolerance knob is set —
        including a bare ``fault_plan``, whose injected faults only fire
        inside the supervised worker loop.
        """
        plan = self.plan
        if (
            plan.job_timeout_s is None
            and plan.max_retries is None
            and plan.fault_plan is None
        ):
            return None
        return Tolerance(
            max_retries=plan.max_retries if plan.max_retries is not None else 2,
            job_timeout_s=plan.job_timeout_s,
            retry_backoff_s=plan.retry_backoff_s,
        )

    def _collect_errors(self) -> bool:
        return self.plan.on_error == "collect"

    def _chunk_size(self, jobs: Iterable[SimJob]) -> int:
        if self.plan.chunk_size is not None:
            return self.plan.chunk_size
        try:
            n = len(jobs)  # type: ignore[arg-type]
        except TypeError:
            return 32  # lazy stream: a fixed chunk keeps memory bounded
        return default_chunk_size(n, self.plan.workers)

    def _execute(self, jobs: Iterable[SimJob], want_results: bool):
        return self.backend.execute(
            jobs,
            want_results=want_results,
            collect_errors=self._collect_errors(),
            workers=self.plan.workers,
            chunk_size=self._chunk_size(jobs),
            ctx=self.ctx,
            tolerance=self.tolerance,
        )

    def _witness_records(
        self, jobs: Iterable[SimJob], want_results: bool
    ) -> Iterator[JobRecord]:
        """Backend records merged with store-synthesized rows, in order.

        Each job is checked against ``plan.witness_store`` as the
        backend pulls it: covered jobs are withheld from execution and
        their deadlock rows synthesized (:func:`~repro.sweep.jobs.
        witness_row`, byte-identical to the simulated row inside the
        certificate's capacity band); the rest run normally and their
        compact record indices are mapped back to original positions.
        Synthesized rows interleave with executed ones by ascending
        original index, so downstream consumers (reducers, checkpoints,
        the CLI tables) cannot tell a pruned row from a simulated one.

        Mining rides the same pass for free: records that arrive with a
        full result attached (always on the serial backend — see the
        backend contract) have their deadlock diagnoses normalized into
        new certificates when ``plan.witness_mine`` is set. Multiprocess
        summary-only streams ship no results, but their workers mine
        in-process (``WorkerContext.mine_witnesses``) and attach the
        compact certificate dict to each record; the parent rehydrates
        and merges it under the store's usual two-way subsumption.
        Witness-first precedence — a record is never mined from both its
        witness and its result — keeps ``witness_mined`` an exact count.
        """
        from collections import deque

        store = self.plan.witness_store
        mine = self.plan.witness_mine
        synth: deque[tuple[int, RunSummary]] = deque()
        sent: list[tuple[int, SimJob]] = []  # compact index -> original

        def feed() -> Iterator[SimJob]:
            for original, job in enumerate(jobs):
                witness = store.find(job)
                if witness is not None:
                    synth.append((original, witness_row(original, job, witness)))
                    self.witness_pruned += 1
                    continue
                sent.append((original, job))
                yield job

        for record in self._execute(feed(), want_results=want_results):
            original, job = sent[record.index]
            while synth and synth[0][0] < original:
                index, row = synth.popleft()
                yield JobRecord(index, row, None)
            if mine:
                if record.witness is not None:
                    from repro.witness import DeadlockWitness

                    if store.add(DeadlockWitness.from_dict(record.witness)):
                        self.witness_mined += 1
                elif record.result is not None:
                    if self._mine(job, record.result):
                        self.witness_mined += 1
            row = record.row
            if row.index != original:
                row = dataclasses.replace(row, index=original)
            yield JobRecord(original, row, record.result)
        while synth:
            index, row = synth.popleft()
            yield JobRecord(index, row, None)

    def _mine(self, job: SimJob, result) -> bool:
        """Normalize one attached result into a stored certificate."""
        from repro.witness import mine_witness

        witness = mine_witness(job, result)
        if witness is None:
            return False
        return self.plan.witness_store.add(witness)

    def _records(
        self, jobs: Iterable[SimJob], want_results: bool
    ) -> Iterator[JobRecord]:
        """The record stream, witness-pruned when a store is attached."""
        if self.plan.witness_store is not None:
            return self._witness_records(jobs, want_results)
        return self._execute(jobs, want_results=want_results)

    def stream(self) -> Iterator[RunSummary]:
        """Yield one row per job, in job order, feeding every reducer.

        With ``plan.checkpoint`` set, progress is periodically
        snapshotted and (under ``plan.resume``) already-finished jobs
        are skipped — only the remaining rows are yielded, but the
        reducers end up byte-identical to an uninterrupted run.
        """
        if self.plan.checkpoint is not None:
            return self._stream_checkpointed()
        return self._stream_plain()

    def _stream_plain(self) -> Iterator[RunSummary]:
        reducers = tuple(self.plan.reducers)
        for record in self._records(self.plan.jobs, want_results=False):
            for reducer in reducers:
                reducer.update(record.row)
            yield record.row

    def _stream_checkpointed(self) -> Iterator[RunSummary]:
        """The checkpointed stream: resume, run the remainder, snapshot.

        Backends enumerate whatever job list they are handed from index
        0, so the remaining jobs run as a *compacted* list and each
        row's index is mapped back to its original grid position before
        reducers see it. Because the plain stream also folds rows in
        job order, the done bitmap is always a prefix of the grid and
        the resumed fold order equals the uninterrupted one — which is
        what makes the final summaries byte-identical.
        """
        from repro.sweep.checkpoint import SweepCheckpoint, sweep_fingerprint

        jobs = list(self.plan.jobs)
        reducers = tuple(self.plan.reducers)
        ckpt = SweepCheckpoint(
            self.plan.checkpoint,
            sweep_fingerprint(jobs, reducers),
            len(jobs),
            every=self.plan.checkpoint_every,
        )
        if self.plan.resume:
            ckpt.resume(reducers)
        remaining = ckpt.remaining()
        try:
            if remaining:
                compact = [jobs[i] for i in remaining]
                # Witness pruning composes transparently: _records
                # yields pruned rows at their compact positions, so the
                # index remap and the done bitmap treat them exactly
                # like simulated rows and a resumed pruned sweep stays
                # byte-identical to an uninterrupted one.
                for record in self._records(compact, want_results=False):
                    original = remaining[record.index]
                    row = dataclasses.replace(record.row, index=original)
                    for reducer in reducers:
                        reducer.update(row)
                    ckpt.mark_done(original)
                    yield row
                    ckpt.maybe_save(reducers)
        finally:
            # Runs on normal exhaustion, on error, and when the consumer
            # closes the generator (Ctrl-C in the CLI): whatever
            # happened, the file on disk reflects every row yielded.
            # A failed final save must not be invisible — the sweep's
            # rows are fine, but the checkpoint is stale and a later
            # resume would silently redo work — so it is recorded on
            # the session, warned about, and raised as CheckpointError.
            # (When the generator is merely garbage-collected, Python
            # swallows exceptions from this clause; the warning and the
            # ``checkpoint_error`` attribute still get through.)
            propagating = sys.exc_info()[0] is not None
            try:
                ckpt.save(reducers)
            except BaseException as exc:
                self.checkpoint_error = exc
                warnings.warn(
                    f"final checkpoint snapshot to {self.plan.checkpoint!r} "
                    f"failed ({type(exc).__name__}: {exc}); the checkpoint "
                    "on disk is stale and must not be resumed from",
                    RuntimeWarning,
                    stacklevel=2,
                )
                if isinstance(exc, CheckpointError):
                    raise
                # Don't replace an exception already propagating out of
                # the stream body — including the GeneratorExit of an
                # explicit close(); it is the more fundamental event and
                # the warning and attribute still record this failure.
                # And don't raise during interpreter shutdown, where the
                # generator is being finalized and the exception would
                # land in an unraisable-hook at best.
                if not propagating and not sys.is_finalizing():
                    raise CheckpointError(
                        f"could not write final checkpoint snapshot to "
                        f"{self.plan.checkpoint!r}: {exc}"
                    ) from exc

    def iter_handles(self) -> Iterator[ResultHandle]:
        """Lazily yield one :class:`ResultHandle` per job, in job order.

        The memory-bounded way to consume a *full-result* sweep:
        handles arrive as the backend finishes jobs (at most one drain
        window of chunks in flight), each carrying its summary row and
        — for backends that ship results eagerly — the materialized
        full result. Drop a handle after processing it and full results
        never accumulate, whatever the sweep size. Reducers are fed as
        each row passes.
        """
        if self.plan.checkpoint is not None:
            raise ConfigError(
                "checkpointing is a streaming feature: resumed runs skip "
                "finished jobs, so an eager full-result sweep would be "
                "missing handles; use SweepSession.stream()"
            )
        jobs = (
            list(self.plan.jobs)
            if not isinstance(self.plan.jobs, Sequence)
            else self.plan.jobs
        )
        labels = self.plan.labels
        reducers = tuple(self.plan.reducers)
        collect = self._collect_errors()
        # A witness-pruned handle arrives with no materialized result
        # (there was no run); its ResultHandle hydrates by executing
        # the job on demand, exactly like a shm-backend handle.
        for record in self._records(jobs, want_results=True):
            for reducer in reducers:
                reducer.update(record.row)
            yield ResultHandle(
                record.row,
                jobs[record.index],
                collect,
                result=record.result if record.result is not None else _UNSET,
                label=labels[record.index] if labels is not None else None,
            )

    def run(self) -> SweepOutcome:
        """Execute everything; return rows plus full-result handles."""
        handles = list(self.iter_handles())
        return SweepOutcome(
            rows=[handle.summary for handle in handles],
            handles=handles,
            reducers=tuple(self.plan.reducers),
            labels=(
                list(self.plan.labels)
                if self.plan.labels is not None
                else None
            ),
        )


def simulate_many(
    programs: "Sequence[ArrayProgram] | Sequence[SimJob]",
    configs: "ArrayConfig | Sequence[ArrayConfig | None] | None" = None,
    *,
    policy: str = "ordered",
    registers: dict[str, dict[str, float | None]] | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    on_error: str = "raise",
    disk_cache: str | None = None,
    backend: str | None = None,
) -> "list[SimulationResult | BatchError]":
    """Simulate every (program, config) job; results in job order.

    Args:
        programs: the programs to run — or prebuilt :class:`SimJob`
            objects for full per-job control.
        configs: ``None`` (defaults per job), one :class:`ArrayConfig`
            broadcast to every program, or one per program.
        policy: assignment policy for every job (ignored for ``SimJob``
            inputs).
        registers: initial registers for every job (ignored for
            ``SimJob`` inputs).
        workers: process count. ``1`` runs in-process (and still reuses
            the analysis cache across jobs); ``N > 1`` farms chunks to
            the ``pool`` backend (or the one named by ``backend``).
        chunk_size: jobs per worker task (must be >= 1); defaults to an
            even split that gives each worker ~4 chunks for load
            balance.
        on_error: ``"raise"`` propagates the first job error;
            ``"collect"`` replaces a failed job's result with a
            :class:`BatchError` so the rest of the batch still runs
            (infeasible sweep corners are data, not fatal).
        disk_cache: directory of the persistent analysis tier
            (:mod:`repro.perf.disk_cache`); configured in this process
            *and* every pool worker, so analyses computed anywhere are
            reused everywhere — including across restarts.
        backend: execution backend name; ``None`` picks ``serial`` for
            one worker or one job, else ``pool``. ``"shm"`` is rejected
            here: it never ships full results, so materializing *all*
            of them (which is this function's contract) would re-run
            every job in-parent — use
            :meth:`SweepSession.iter_handles` / :func:`simulate_stream`
            to get the arena's benefits.

    Returns:
        One :class:`SimulationResult` (or :class:`BatchError` under
        ``on_error="collect"``) per job, in input order — the merge is
        deterministic regardless of worker scheduling.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
    if on_error not in _VALID_ON_ERROR:
        raise ConfigError(
            f"on_error must be 'raise' or 'collect', got {on_error!r}"
        )
    if backend == "shm":
        raise ConfigError(
            "simulate_many materializes every full result, which the shm "
            "backend would satisfy by re-running each job in-parent; use "
            "SweepSession.iter_handles() or simulate_stream(backend='shm') "
            "instead"
        )
    jobs = normalize_jobs(programs, configs, policy, registers)
    if not jobs:
        return []
    if backend is None and (workers == 1 or len(jobs) == 1):
        workers = 1  # a single job never needs a pool
    plan = SweepPlan(
        jobs=jobs,
        backend=backend,
        workers=workers,
        chunk_size=chunk_size,
        on_error=on_error,
        disk_cache=disk_cache,
    )
    return SweepSession(plan).run().results()


def simulate_stream(
    jobs: Iterable[SimJob],
    *,
    reducers: Sequence[StreamReducer] = (),
    workers: int = 1,
    chunk_size: int = 32,
    on_error: str = "collect",
    disk_cache: str | None = None,
    backend: str | None = None,
    job_timeout_s: float | None = None,
    max_retries: int | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint: str | None = None,
    checkpoint_every: int = 64,
    resume: bool = False,
) -> Iterator[RunSummary]:
    """Stream per-job summary rows with O(1) retained state.

    Unlike :func:`simulate_many`, ``jobs`` may be a lazy generator and
    results are never accumulated: each job is reduced to a
    :class:`RunSummary` (in the worker, for ``workers > 1``, so full
    results also never cross the pool pipe), fed through every reducer,
    and yielded in job order. Peak memory is bounded by
    ``workers * chunk_size`` in-flight jobs, independent of sweep size
    (the ``shm`` backend too: its segmented arena holds 256-byte slots
    only for the in-flight window, growing ahead of dispatch and
    retiring drained segments behind it).

    Args:
        jobs: the jobs to run, lazily consumed.
        reducers: :class:`StreamReducer` instances updated with every
            row before it is yielded; read their ``summary()`` after the
            stream is exhausted.
        workers: process count; ``1`` streams in-process. With a pool,
            chunks whose programs carry unpicklable compute closures run
            in-process transparently, preserving order.
        chunk_size: jobs per worker task.
        on_error: ``"collect"`` (default) turns failed jobs into
            ``infeasible`` rows; ``"raise"`` propagates the first error.
        disk_cache: analysis disk tier forwarded to every worker (see
            :func:`simulate_many`).
        backend: execution backend name; ``None`` picks ``serial`` for
            one worker, else ``pool``.
        job_timeout_s: per-job wall clock enforced by the supervised
            executor; a hung job's worker is killed and the corner
            recorded as a timeout-class row.
        max_retries: extra attempts a job gets after crashing or
            hanging its worker before being quarantined. Setting either
            of these (or ``fault_plan``) engages fault-tolerant
            supervision on the multiprocess backends.
        fault_plan: deterministic injected faults
            (:class:`~repro.sweep.fault.FaultPlan`) for testing the
            recovery machinery.
        checkpoint: path for periodic atomic progress snapshots.
        checkpoint_every: rows between periodic snapshots.
        resume: skip jobs already recorded in ``checkpoint``; reducer
            summaries stay byte-identical to an uninterrupted run.

    Yields:
        One :class:`RunSummary` per job, in job order.
    """
    if chunk_size < 1:
        raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
    plan = SweepPlan(
        jobs=jobs,
        reducers=tuple(reducers),
        backend=backend,
        workers=workers,
        chunk_size=chunk_size,
        on_error=on_error,
        disk_cache=disk_cache,
        job_timeout_s=job_timeout_s,
        max_retries=max_retries,
        fault_plan=fault_plan,
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        resume=resume,
    )
    return SweepSession(plan).stream()
