"""Shared-memory execution: summary rows never cross the pool pipe.

The pipe-bound regime this backend exists for: a full-result sweep over
many jobs, where the pool backend pickles every
:class:`~repro.sim.result.SimulationResult` (traces, register files,
queue stats — tens of kilobytes each) through the pool pipe and the
parent deserializes all of them again. Here the parent instead allocates
a :class:`~repro.sweep.arena.SummaryArena` of fixed-width rows, workers
encode each finished job's :class:`~repro.sweep.summary.RunSummary`
directly into the job's slot (disjoint slots, no locking), and the only
thing a chunk returns through the pipe is its list of *overflow* rows —
rows whose strings exceed the arena's fixed fields, empty in practice.

Full results are never materialized by this backend: the session wraps
each row in a :class:`~repro.sweep.plan.ResultHandle` that re-executes
the (deterministic) job in the parent on first access, against a warm
analysis cache. A million-run sweep therefore costs one 256-byte slot
per run plus the handful of full hydrations actually inspected.
"""

from __future__ import annotations

import functools
import multiprocessing
from collections import deque
from typing import Iterable, Iterator

from repro.sweep.arena import SummaryArena
from repro.sweep.backends import (
    ExecutionBackend,
    JobRecord,
    Tolerance,
    WorkerContext,
    register_backend,
)
from repro.sweep.backends.pool import _PicklabilityCache
from repro.sweep.jobs import SimJob, iter_chunks, run_job
from repro.sweep.summary import RunSummary, summarize_result


def _fill_arena(
    arena: SummaryArena,
    chunk: list[tuple[int, SimJob]],
    collect_errors: bool,
) -> list[tuple[int, RunSummary]]:
    """Run a chunk, writing rows into ``arena``; return the overflow."""
    overflow: list[tuple[int, RunSummary]] = []
    for index, job in chunk:
        row = summarize_result(index, job, run_job(job, collect_errors))
        if not arena.write_row(index, row):
            overflow.append((index, row))
    return overflow


def _run_chunk_shm(
    chunk: list[tuple[int, SimJob]],
    arena_name: str,
    n_rows: int,
    collect_errors: bool,
    ctx: WorkerContext,
) -> list[tuple[int, RunSummary]]:
    """Worker entry point: rows go to the arena, overflow to the pipe."""
    ctx.apply()
    arena = SummaryArena.attach(arena_name, n_rows)
    try:
        return _fill_arena(arena, chunk, collect_errors)
    finally:
        arena.close()


@register_backend
class ShmBackend(ExecutionBackend):
    """Workers write rows into a shared arena; the pipe carries overflow."""

    name = "shm"

    def execute(
        self,
        jobs: Iterable[SimJob],
        *,
        want_results: bool,
        collect_errors: bool,
        workers: int,
        chunk_size: int,
        ctx: WorkerContext,
        tolerance: Tolerance | None = None,
    ) -> Iterator[JobRecord]:
        # The arena is sized up front, so the job list must materialize;
        # peak memory is the jobs themselves plus ROW_SIZE bytes per job
        # (full results never accumulate regardless of sweep size).
        job_list = list(jobs)
        n = len(job_list)
        if n == 0:
            return
        probe = _PicklabilityCache()
        if tolerance is not None:
            # Fault-tolerant path: supervised workers still write rows
            # into the shared arena; the supervisor decodes each slot on
            # acknowledgement and requeues any job whose slot reads back
            # unwritten (a dead worker or a torn write).
            from repro.sweep.backends.supervise import run_supervised

            arena = SummaryArena.create(n)
            try:
                yield from run_supervised(
                    job_list,
                    want_results=want_results,
                    collect_errors=collect_errors,
                    workers=workers,
                    chunk_size=chunk_size,
                    ctx=ctx,
                    tolerance=tolerance,
                    arena=arena,
                    probe=probe,
                )
            finally:
                arena.close()
                arena.unlink()
            return
        arena = SummaryArena.create(n)
        try:
            run_chunk = functools.partial(
                _run_chunk_shm,
                arena_name=arena.name,
                n_rows=n,
                collect_errors=collect_errors,
                ctx=ctx,
            )
            def run_chunk_local(
                chunk: list[tuple[int, SimJob]]
            ) -> list[tuple[int, RunSummary]]:
                # In-process fallback for unpicklable chunks: write
                # through the owning arena handle directly (attaching a
                # second handle would confuse the resource tracker).
                return _fill_arena(arena, chunk, collect_errors)

            max_pending = workers * 2
            with multiprocessing.Pool(processes=workers) as pool:
                window: deque = deque()

                def drain_one() -> Iterator[JobRecord]:
                    chunk, pending = window.popleft()
                    overflow = (
                        pending.get() if hasattr(pending, "get") else pending
                    )
                    spilled = dict(overflow)
                    for index, _job in chunk:
                        row = spilled.get(index)
                        if row is None:
                            row = arena.read_row(index)
                        yield JobRecord(index, row, None)

                for chunk in iter_chunks(job_list, chunk_size):
                    if probe.chunk_picklable(chunk):
                        window.append(
                            (chunk, pool.apply_async(run_chunk, (chunk,)))
                        )
                    else:
                        window.append((chunk, run_chunk_local(chunk)))
                    while len(window) >= max_pending:
                        yield from drain_one()
                while window:
                    yield from drain_one()
        finally:
            arena.close()
            arena.unlink()
