"""Shared-memory execution: summary rows never cross the pool pipe.

The pipe-bound regime this backend exists for: a full-result sweep over
many jobs, where the pool backend pickles every
:class:`~repro.sim.result.SimulationResult` (traces, register files,
queue stats — tens of kilobytes each) through the pool pipe and the
parent deserializes all of them again. Here the parent instead allocates
a :class:`~repro.sweep.arena.SummaryArena` of fixed-width rows, workers
encode each finished job's :class:`~repro.sweep.summary.RunSummary`
directly into the job's slot (disjoint slots, no locking), and the only
things a chunk returns through the pipe are its *overflow* rows — rows
whose strings exceed the arena's fixed fields, empty in practice — and
any witness certificates it mined.

The arena is segmented and grown on demand (:meth:`SummaryArena.
ensure_rows`), so ``jobs`` may be a lazy generator: the parent sizes
capacity one chunk ahead of dispatch and retires fully-drained segments
behind the window (:meth:`SummaryArena.retire_below`). Peak shared
memory is therefore a few live segments — bounded by the in-flight
window, not the sweep length — and the job list is never materialized.
(The fault-tolerant path still materializes: the supervisor requeues
failed jobs by random access.)

Full results are never materialized by this backend: the session wraps
each row in a :class:`~repro.sweep.plan.ResultHandle` that re-executes
the (deterministic) job in the parent on first access, against a warm
analysis cache. A million-run sweep therefore costs a bounded window of
256-byte slots plus the handful of full hydrations actually inspected.
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from typing import Iterable, Iterator

from repro.sweep.arena import SummaryArena
from repro.sweep.backends import (
    ExecutionBackend,
    JobRecord,
    Tolerance,
    WorkerContext,
    register_backend,
)
from repro.sweep.backends.pool import _PicklabilityCache
from repro.sweep.jobs import (
    SimJob,
    iter_chunks,
    mine_witness_payload,
    run_job,
)
from repro.sweep.summary import RunSummary, summarize_result


def _fill_arena(
    arena: SummaryArena,
    chunk: list[tuple[int, SimJob]],
    collect_errors: bool,
    mine: bool,
) -> tuple[list[tuple[int, RunSummary]], list[tuple[int, dict]]]:
    """Run a chunk, writing rows into ``arena``.

    Returns ``(overflow, mined)``: rows whose strings did not fit a slot
    (shipped through the pipe instead), and the compact witness dicts
    mined from deadlocked results when ``mine`` is set.
    """
    overflow: list[tuple[int, RunSummary]] = []
    mined: list[tuple[int, dict]] = []
    for index, job in chunk:
        result = run_job(job, collect_errors)
        row = summarize_result(index, job, result)
        if not arena.write_row(index, row):
            overflow.append((index, row))
        if mine:
            witness = mine_witness_payload(job, result)
            if witness is not None:
                mined.append((index, witness))
    return overflow, mined


def _run_chunk_shm(
    chunk: list[tuple[int, SimJob]],
    arena_name: str,
    n_rows: int,
    segment_rows: int,
    collect_errors: bool,
    ctx: WorkerContext,
) -> tuple[list[tuple[int, RunSummary]], list[tuple[int, dict]]]:
    """Worker entry point: rows go to the arena, overflow to the pipe."""
    ctx.apply()
    # Lazy attach: the parent may already have retired early segments
    # this chunk will never touch.
    arena = SummaryArena.attach(
        arena_name, n_rows, segment_rows=segment_rows, lazy=True
    )
    try:
        return _fill_arena(arena, chunk, collect_errors, ctx.mine_witnesses)
    finally:
        arena.close()


@register_backend
class ShmBackend(ExecutionBackend):
    """Workers write rows into a shared arena; the pipe carries overflow."""

    name = "shm"

    def execute(
        self,
        jobs: Iterable[SimJob],
        *,
        want_results: bool,
        collect_errors: bool,
        workers: int,
        chunk_size: int,
        ctx: WorkerContext,
        tolerance: Tolerance | None = None,
    ) -> Iterator[JobRecord]:
        probe = _PicklabilityCache()
        if tolerance is not None:
            # Fault-tolerant path: supervised workers still write rows
            # into the shared arena; the supervisor decodes each slot on
            # acknowledgement and requeues any job whose slot reads back
            # unwritten (a dead worker or a torn write). Supervision
            # requeues by random access into the job list, so this path
            # materializes it — only the fast path below streams.
            from repro.sweep.backends.supervise import run_supervised

            job_list = list(jobs)
            n = len(job_list)
            if n == 0:
                return
            arena = SummaryArena.create(n)
            try:
                yield from run_supervised(
                    job_list,
                    want_results=want_results,
                    collect_errors=collect_errors,
                    workers=workers,
                    chunk_size=chunk_size,
                    ctx=ctx,
                    tolerance=tolerance,
                    arena=arena,
                    probe=probe,
                )
            finally:
                arena.close()
                arena.unlink()
            return
        arena = SummaryArena.create(0)
        try:
            def run_chunk_local(
                chunk: list[tuple[int, SimJob]]
            ) -> tuple[list, list]:
                # In-process fallback for unpicklable chunks: write
                # through the owning arena handle directly (attaching a
                # second handle would confuse the resource tracker).
                return _fill_arena(
                    arena, chunk, collect_errors, ctx.mine_witnesses
                )

            max_pending = workers * 2
            with multiprocessing.Pool(processes=workers) as pool:
                window: deque = deque()

                def drain_one() -> Iterator[JobRecord]:
                    chunk, pending = window.popleft()
                    payload = (
                        pending.get() if hasattr(pending, "get") else pending
                    )
                    overflow, mined = payload
                    spilled = dict(overflow)
                    witnesses = dict(mined)
                    for index, _job in chunk:
                        row = spilled.get(index)
                        if row is None:
                            row = arena.read_row(index)
                        yield JobRecord(index, row, None, witnesses.get(index))
                    # Every slot at or below this chunk is decoded now;
                    # release the segments behind the window.
                    arena.retire_below(chunk[-1][0] + 1)

                for chunk in iter_chunks(jobs, chunk_size):
                    # Grow capacity one chunk ahead of dispatch: workers
                    # attach lazily, so the segments must exist before
                    # the chunk can run.
                    arena.ensure_rows(chunk[-1][0] + 1)
                    if probe.chunk_picklable(chunk):
                        window.append(
                            (
                                chunk,
                                pool.apply_async(
                                    _run_chunk_shm,
                                    (
                                        chunk,
                                        arena.name,
                                        arena.n_rows,
                                        arena.segment_rows,
                                        collect_errors,
                                        ctx,
                                    ),
                                ),
                            )
                        )
                    else:
                        window.append((chunk, run_chunk_local(chunk)))
                    while len(window) >= max_pending:
                        yield from drain_one()
                while window:
                    yield from drain_one()
        finally:
            arena.close()
            arena.unlink()
