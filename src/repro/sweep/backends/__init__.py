"""Execution backends: how a sweep's jobs actually run.

The backend contract
--------------------

A backend turns an iterable of :class:`~repro.sweep.jobs.SimJob` into an
ordered stream of :class:`JobRecord` tuples ``(index, row, result,
witness)``:

* records MUST be yielded in job order (index 0, 1, 2, ...);
* ``row`` is the job's :class:`~repro.sweep.summary.RunSummary` and MUST
  be byte-identical across backends for the same job list — backends
  may move rows through any transport (pipe, shared memory) but never
  alter them;
* ``result`` is the full :class:`~repro.sim.result.SimulationResult`
  (or :class:`~repro.sweep.jobs.BatchError`) when ``want_results`` is
  set *and* the backend materializes results eagerly, else ``None`` —
  the session then hydrates on demand through a
  :class:`~repro.sweep.plan.ResultHandle`. A backend MAY attach the
  result even when ``want_results`` is unset if it costs nothing (the
  serial backend always does: the result exists in-process anyway) —
  the session uses such free results opportunistically, e.g. to mine
  deadlock witnesses off a streamed run — but consumers MUST NOT rely
  on it: multiprocess backends ship ``None`` on the summary-only path;
* ``witness`` is the worker-side mining hook: with
  ``WorkerContext.mine_witnesses`` set, multiprocess workers mine each
  deadlocked result *in the worker* (where the full result exists
  anyway) via :func:`~repro.sweep.jobs.mine_witness_payload` and attach
  the compact certificate dict — the parent merges it into the witness
  store under the usual two-way subsumption, so summary-only streams
  mine at full speed too. Backends that ship the full ``result`` MAY
  leave ``witness`` ``None`` (the parent mines from the result); a
  record never needs both;
* with ``collect_errors`` unset, the first failing job's exception MUST
  propagate to the consumer (no silent loss);
* worker processes MUST apply the :class:`WorkerContext` before running
  jobs, so per-process state (the analysis disk-cache tier, the fault
  plan of the deterministic injection harness) matches the parent;
* a non-``None`` ``tolerance`` argument asks for fault-tolerant
  execution — multiprocess backends route through the supervised
  executor (:mod:`repro.sweep.backends.supervise`: crash recovery,
  per-job wall-clock timeouts, bounded retries with backoff, poison-job
  quarantine) and must still satisfy every clause above.

Backends register under a short name (``serial``, ``pool``, ``shm``)
via :func:`register_backend`; :func:`get_backend` resolves names for
:class:`~repro.sweep.plan.SweepSession`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, NamedTuple

from repro.errors import ConfigError
from repro.sweep import fault as fault_mod
from repro.sweep.fault import FaultPlan, Tolerance
from repro.sweep.jobs import BatchError, SimJob
from repro.sweep.summary import RunSummary

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.sim.result import SimulationResult


class JobRecord(NamedTuple):
    """One finished job: index, summary row and optional payloads.

    ``witness`` is a compact :meth:`~repro.witness.certificate.
    DeadlockWitness.as_dict` payload mined inside a worker (see the
    backend contract above); ``None`` whenever mining is off, the job
    did not deadlock, or the backend ships the full ``result`` instead.
    """

    index: int
    row: RunSummary
    result: "SimulationResult | BatchError | None"
    witness: dict | None = None


@dataclass(frozen=True)
class WorkerContext:
    """Per-process configuration a backend replays inside its workers.

    This is the worker-configuration hook that used to be a hard-coded
    ``disk_cache`` parameter threaded through ``simulate_many``: the
    session captures it once, every backend applies it in each worker
    (and in the parent), and future per-process knobs extend this
    dataclass instead of every backend's signature.
    """

    disk_cache: str | None = None
    disk_cache_max_bytes: int | None = None
    fault_plan: FaultPlan | None = None
    crossing_backend: str | None = None
    #: Mine deadlock witnesses inside workers (see the backend contract:
    #: the full result exists there anyway, so mining is free) and ship
    #: the compact dicts back on each :class:`JobRecord`.
    mine_witnesses: bool = False
    #: Name of the parent's shared-memory analysis arena
    #: (:mod:`repro.perf.shm_cache`); workers attach once and resolve
    #: analysis fingerprints with zero filesystem I/O.
    shm_cache: str | None = None

    @classmethod
    def capture(
        cls,
        disk_cache: str | None = None,
        fault_plan: FaultPlan | None = None,
        *,
        mine_witnesses: bool = False,
        shm_cache: str | None = None,
    ) -> "WorkerContext":
        """Snapshot the parent's per-process configuration.

        An explicit ``disk_cache`` wins; otherwise a programmatically
        configured disk tier (:func:`repro.perf.disk_cache.
        configure_disk_cache`) is forwarded so pool workers share it.
        The crossing-backend preference follows the same rule: a
        parent-process :func:`repro.core.crossing.
        configure_crossing_backend` call is forwarded so every worker
        resolves engines the way the parent does. Env-var-only
        configuration needs no forwarding — workers inherit the
        environment and resolve it themselves. ``fault_plan`` rides
        along verbatim: it is the injection channel for the
        deterministic fault harness (:mod:`repro.sweep.fault`).
        ``mine_witnesses`` and ``shm_cache`` are session decisions (a
        witness store is attached; a shared-memory analysis arena was
        published), not ambient state, so the session passes them
        explicitly.
        """
        from repro.core.crossing import configured_crossing_backend

        crossing_backend = configured_crossing_backend()
        disk_cache_max_bytes = None
        if disk_cache is None:
            from repro.perf.disk_cache import active_disk_cache_config

            active = active_disk_cache_config()
            if active is not None:
                disk_cache, disk_cache_max_bytes = active
        return cls(
            disk_cache=disk_cache,
            disk_cache_max_bytes=disk_cache_max_bytes,
            fault_plan=fault_plan,
            crossing_backend=crossing_backend,
            mine_witnesses=mine_witnesses,
            shm_cache=shm_cache,
        )

    def apply(self) -> None:
        """Apply this configuration in the current process.

        Installing the fault plan is inert outside supervised workers:
        only the supervised worker loop calls the plan's ``maybe_*``
        hooks, so the parent (which applies its own context too) can
        never fire an injected crash or hang. Attaching the
        shared-memory analysis arena is best-effort: a failed attach
        (the parent already exited, a torn header) degrades to "no shm
        tier" inside :func:`repro.perf.shm_cache.attach_shm_cache`,
        never to a failed worker.
        """
        if self.disk_cache is not None:
            from repro.perf.disk_cache import configure_disk_cache

            configure_disk_cache(
                self.disk_cache, max_bytes=self.disk_cache_max_bytes
            )
        if self.crossing_backend is not None:
            from repro.core.crossing import configure_crossing_backend

            configure_crossing_backend(self.crossing_backend)
        if self.shm_cache is not None:
            from repro.perf.shm_cache import attach_shm_cache

            attach_shm_cache(self.shm_cache)
        fault_mod.install(self.fault_plan)


class ExecutionBackend:
    """Base class every execution backend implements."""

    name = "backend"

    def execute(
        self,
        jobs: Iterable[SimJob],
        *,
        want_results: bool,
        collect_errors: bool,
        workers: int,
        chunk_size: int,
        ctx: WorkerContext,
        tolerance: Tolerance | None = None,
    ) -> Iterator[JobRecord]:  # pragma: no cover - abstract
        """Run every job; yield :class:`JobRecord` in job order.

        A non-``None`` ``tolerance`` asks for fault-tolerant execution:
        multiprocess backends route through the supervised executor
        (:mod:`repro.sweep.backends.supervise`) — crash recovery,
        per-job timeouts, bounded retries — while the serial backend,
        which has no worker processes to lose, ignores it.
        """
        raise NotImplementedError


_BACKENDS: dict[str, type[ExecutionBackend]] = {}


def register_backend(cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
    """Class decorator: register ``cls`` under its ``name``."""
    _BACKENDS[cls.name] = cls
    return cls


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    _load_builtins()
    return tuple(sorted(_BACKENDS))


def get_backend(name: str) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``."""
    _load_builtins()
    try:
        cls = _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise ConfigError(
            f"unknown execution backend {name!r} (known: {known})"
        ) from None
    return cls()


def _load_builtins() -> None:
    # Importing the modules runs their @register_backend decorators.
    from repro.sweep.backends import pool, serial, shm  # noqa: F401
