"""Chunked multiprocessing execution over a pool pipe.

Jobs are split into contiguous chunks and farmed to a
:class:`multiprocessing.Pool` through a bounded window of
``apply_async`` futures: at most ``workers * 2`` chunks are in flight,
results drain strictly in job order, and a chunk whose programs carry
unpicklable compute closures (inline lambdas) is simply computed
in-process and slotted into the same window position — graceful
degradation, never an error. Each worker warms its own analysis cache,
so chunking by program keeps the cache hot, and the
:class:`~repro.sweep.backends.WorkerContext` replays the parent's disk
tier so analyses are shared *across* processes too.

With ``want_results`` every full :class:`SimulationResult` is pickled
back through the pipe — exact but pipe-bound at scale; the ``shm``
backend exists for that regime.
"""

from __future__ import annotations

import functools
import multiprocessing
import pickle
import weakref
from collections import deque
from typing import Iterable, Iterator

from repro.sweep.backends import (
    ExecutionBackend,
    JobRecord,
    Tolerance,
    WorkerContext,
    register_backend,
)
from repro.sweep.jobs import (
    SimJob,
    iter_chunks,
    mine_witness_payload,
    run_job,
)
from repro.sweep.summary import summarize_result


def _run_chunk(
    chunk: list[tuple[int, SimJob]],
    want_results: bool,
    collect_errors: bool,
    ctx: WorkerContext,
) -> list[JobRecord]:
    """Worker entry point: run a chunk, tagging rows with job indices."""
    ctx.apply()
    records = []
    for index, job in chunk:
        result = run_job(job, collect_errors)
        row = summarize_result(index, job, result)
        witness = (
            mine_witness_payload(job, result) if ctx.mine_witnesses else None
        )
        records.append(
            JobRecord(index, row, result if want_results else None, witness)
        )
    return records


class _PicklabilityCache:
    """Weak identity cache of already-probed programs.

    Weak references (checked for identity) make CPython ``id()`` reuse
    harmless: if the original program was freed, its entry no longer
    matches and the new occupant of that address is probed like any
    other.
    """

    def __init__(self) -> None:
        self._probed_ok: dict[int, weakref.ref] = {}

    def chunk_picklable(self, chunk: list[tuple[int, SimJob]]) -> bool:
        probed_ok = self._probed_ok
        probes = []
        for _index, job in chunk:
            known = probed_ok.get(id(job.program))
            if known is None or known() is not job.program:
                probes.append(job)
        if probes:
            try:
                pickle.dumps(probes)
            except (pickle.PicklingError, TypeError, AttributeError):
                # The ways CPython actually refuses a pickle: explicit
                # PicklingError, TypeError ("cannot pickle '...' object")
                # and AttributeError for unreachable locals (lambdas,
                # closures). Anything else is a real bug in the program
                # object and must surface, not silently demote the chunk
                # to in-process execution.
                return False
            if len(probed_ok) >= 1024:
                # Keep the cache O(live programs): drop entries whose
                # program has been freed (an endless stream of distinct
                # programs would otherwise grow it without bound).
                for key in [k for k, ref in probed_ok.items() if ref() is None]:
                    del probed_ok[key]
            for job in probes:
                try:
                    probed_ok[id(job.program)] = weakref.ref(job.program)
                except TypeError:  # pragma: no cover - unweakrefable program
                    pass
        return True


@register_backend
class PoolBackend(ExecutionBackend):
    """Chunked multiprocessing with an ordered, bounded drain window."""

    name = "pool"

    def execute(
        self,
        jobs: Iterable[SimJob],
        *,
        want_results: bool,
        collect_errors: bool,
        workers: int,
        chunk_size: int,
        ctx: WorkerContext,
        tolerance: Tolerance | None = None,
    ) -> Iterator[JobRecord]:
        probe = _PicklabilityCache()
        if tolerance is not None:
            # Fault-tolerant path: the supervised executor owns worker
            # lifecycles (crash recovery, per-job timeouts, retries).
            from repro.sweep.backends.supervise import run_supervised

            yield from run_supervised(
                list(jobs),
                want_results=want_results,
                collect_errors=collect_errors,
                workers=workers,
                chunk_size=chunk_size,
                ctx=ctx,
                tolerance=tolerance,
                probe=probe,
            )
            return
        run_chunk = functools.partial(
            _run_chunk,
            want_results=want_results,
            collect_errors=collect_errors,
            ctx=ctx,
        )
        # Windowed apply_async keeps ordering exact and memory bounded:
        # at most `max_pending` chunks are in flight, and a chunk that
        # cannot cross the pipe is computed here and slotted into the
        # same window position.
        max_pending = workers * 2
        with multiprocessing.Pool(processes=workers) as pool:
            window: deque = deque()

            def drain_one() -> Iterator[JobRecord]:
                pending = window.popleft()
                records = pending.get() if hasattr(pending, "get") else pending
                yield from records

            for chunk in iter_chunks(jobs, chunk_size):
                if probe.chunk_picklable(chunk):
                    window.append(pool.apply_async(run_chunk, (chunk,)))
                else:
                    window.append(run_chunk(chunk))
                while len(window) >= max_pending:
                    yield from drain_one()
            while window:
                yield from drain_one()
