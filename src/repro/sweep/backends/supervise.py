"""Supervised fault-tolerant execution shared by the pool and shm backends.

The plain pool/shm fast paths assume every worker lives forever: a dead
worker hangs the drain window, and an unwritten arena slot raises in the
parent. This module is the execution path for sweeps that cannot afford
that assumption — million-job provisioning runs where a single OOM-killed
worker or one hung corner must cost one retry, not the sweep.

Design
------

One parent supervisor drives ``workers`` long-lived child processes,
each connected by its own duplex :func:`multiprocessing.Pipe`:

* **per-worker pipes, not a shared queue** — a SIGKILLed worker can
  never corrupt or deadlock anyone else's transport (a shared
  ``multiprocessing.Queue`` write lock dies with its holder), and pipe
  EOF *is* the crash detector: :func:`multiprocessing.connection.wait`
  wakes the supervisor the moment a child dies;
* **per-job progress messages** — a worker announces ``("start", i)``
  before running job ``i`` and ships the finished row after, so a death
  is attributed to exactly the job that was in flight; unstarted jobs
  from the dead worker's chunk are requeued with no penalty;
* **bounded retries with exponential backoff** — a failed job is
  requeued as a singleton chunk (making any future death attributable
  by construction) after ``Tolerance.backoff(attempt)`` seconds; past
  ``max_retries`` it is quarantined: a crash becomes a
  :class:`~repro.sweep.jobs.BatchError` row of kind ``"WorkerCrash"``
  (or raises :class:`~repro.errors.WorkerCrashError` under
  ``on_error="raise"``), a hang becomes a timeout-class row — a hung
  corner is data, same as a deadlock;
* **per-job wall-clock timeouts** — the supervisor kills any worker
  whose current job exceeds ``Tolerance.job_timeout_s``, after first
  draining the rows it already produced;
* **ordered emission** — finished records enter a reorder buffer and
  are yielded strictly in job order, preserving the backend contract
  (rows byte-identical to the serial backend, reducers fold in job
  order).

In arena mode (the shm backend) workers write rows into the shared
arena exactly as the fast path does and the pipe carries only tiny
``("row", i, None, None)`` acknowledgements (overflow rows ride the
pipe, as ever). The parent decodes each acknowledged slot immediately;
an :class:`~repro.errors.ArenaSlotUnwritten` decode — a torn write —
is treated like a crash of that one job and requeued with penalty.

Injected faults (:class:`~repro.sweep.fault.FaultPlan`) fire only in
`_worker_main`, between the start announcement and the job run — never
in the parent, and never for chunks that fall back to in-parent
execution because their programs cannot pickle.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from multiprocessing.connection import wait as _conn_wait
from typing import Iterator, Sequence

from repro.errors import WorkerCrashError
from repro.sweep import fault as fault_mod
from repro.sweep.arena import SummaryArena
from repro.sweep.backends import JobRecord, WorkerContext
from repro.sweep.fault import Tolerance
from repro.sweep.jobs import (
    WORKER_CRASH_KIND,
    BatchError,
    SimJob,
    iter_chunks,
    mine_witness_payload,
    run_job,
)
from repro.sweep.summary import summarize_result, timeout_row

#: What ``conn.send`` raises when an exception *payload* cannot pickle
#: (closures in args, exotic __reduce__): the same classes the disk
#: cache narrows its stores to. Transport failures (``BrokenPipeError``,
#: ``OSError``) are NOT in this set — a dead parent must propagate to
#: the worker loop's exit handler, not trigger a pointless resend — and
#: bug-class exceptions (``MemoryError``) must never be swallowed.
_UNPICKLABLE_PAYLOAD = (
    pickle.PicklingError,
    TypeError,
    AttributeError,
    ValueError,
    RecursionError,
)


def _worker_main(
    wid: int,
    conn,
    ctx: WorkerContext,
    want_results: bool,
    collect_errors: bool,
    arena_name: str | None,
    n_rows: int,
    segment_rows: int,
) -> None:
    """Child process loop: run chunks from the pipe until told to stop.

    Message protocol (child -> parent)::

        ("start", index)              about to run job `index`
        ("row", index, row, result, witness)
                                      job finished; row is None when it
                                      was published to the arena instead;
                                      witness is the compact certificate
                                      dict mined in-worker (or None)
        ("error", index, exc, dropped)
                                      job raised (collect_errors off or a
                                      non-Repro bug); parent re-raises in
                                      job order. dropped is True when the
                                      original exception payload could
                                      not pickle and a summary RuntimeError
                                      rides in its place (counted in
                                      Supervisor.payload_drops)
        ("done", chunk_id)            chunk finished, worker is idle
    """
    ctx.apply()
    plan = fault_mod.active_plan()
    arena = (
        SummaryArena.attach(
            arena_name, n_rows, segment_rows=segment_rows, lazy=True
        )
        if arena_name is not None
        else None
    )
    try:
        while True:
            task = conn.recv()
            if task is None:
                return
            chunk_id, items = task
            for index, job in items:
                conn.send(("start", index))
                if plan is not None:
                    plan.maybe_crash(index)
                    plan.maybe_hang(index)
                try:
                    result = run_job(job, collect_errors)
                except MemoryError:
                    # Bug-class, not data: let the worker die — crash
                    # recovery requeues the job with bounded retries
                    # instead of shipping an OOM as an ordinary row.
                    raise
                except Exception as exc:
                    try:
                        conn.send(("error", index, exc, False))
                    except _UNPICKLABLE_PAYLOAD:
                        conn.send(
                            (
                                "error",
                                index,
                                RuntimeError(
                                    f"{type(exc).__name__}: {exc}"
                                ),
                                True,
                            )
                        )
                    continue
                row = summarize_result(index, job, result)
                witness = (
                    mine_witness_payload(job, result)
                    if ctx.mine_witnesses
                    else None
                )
                if arena is not None:
                    published = arena.write_row(index, row)
                    if published and plan is not None:
                        published = not plan.maybe_corrupt(arena, index)
                    conn.send(
                        (
                            "row",
                            index,
                            None if published else row,
                            None,
                            witness,
                        )
                    )
                else:
                    conn.send(
                        (
                            "row",
                            index,
                            row,
                            result if want_results else None,
                            witness,
                        )
                    )
            conn.send(("done", chunk_id))
    except (EOFError, BrokenPipeError):  # parent went away: just exit
        pass
    finally:
        if arena is not None:
            arena.close()


class _Raise:
    """Reorder-buffer sentinel: re-raise this exception at emission."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


class _Worker:
    """Parent-side handle on one supervised child process."""

    __slots__ = ("wid", "conn", "process", "task", "current", "started_at")

    def __init__(self, wid: int, spawn) -> None:
        self.wid = wid
        self.conn, child_conn = multiprocessing.Pipe(duplex=True)
        self.process = spawn(wid, child_conn)
        # The parent must drop its copy of the child end or pipe EOF
        # (the crash detector) never fires.
        child_conn.close()
        self.task = None  # (chunk_id, items) currently assigned
        self.current: int | None = None  # job index announced via "start"
        self.started_at = 0.0

    @property
    def idle(self) -> bool:
        return self.task is None

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join()
        self.conn.close()


class Supervisor:
    """Fault-tolerant chunked execution with ordered emission."""

    def __init__(
        self,
        jobs: Sequence[SimJob],
        *,
        want_results: bool,
        collect_errors: bool,
        workers: int,
        chunk_size: int,
        ctx: WorkerContext,
        tolerance: Tolerance,
        arena: SummaryArena | None = None,
        probe=None,
    ) -> None:
        self.jobs = list(jobs)
        self.want_results = want_results
        self.collect_errors = collect_errors
        self.n_workers = max(1, workers)
        self.chunk_size = max(1, chunk_size)
        self.ctx = ctx
        self.tol = tolerance
        self.arena = arena
        self.probe = probe
        self._chunk_seq = 0
        self._pending: list = []  # [chunk_id, items, not_before]
        self._attempts: dict[int, int] = {}
        self._completed: dict[int, JobRecord | _Raise] = {}
        self._workers: list[_Worker] = []
        #: Exceptions whose payload could not cross the pipe: the worker
        #: shipped a summary RuntimeError in place of the original (see
        #: the worker protocol), and each such substitution counts here.
        self.payload_drops = 0

    def stats(self) -> dict[str, int]:
        """Observability counters for this supervised run."""
        return {"payload_drops": self.payload_drops}

    # -- worker lifecycle -------------------------------------------------

    def _spawn(self, wid: int, child_conn):
        process = multiprocessing.Process(
            target=_worker_main,
            args=(
                wid,
                child_conn,
                self.ctx,
                self.want_results,
                self.collect_errors,
                self.arena.name if self.arena is not None else None,
                self.arena.n_rows if self.arena is not None else 0,
                self.arena.segment_rows if self.arena is not None else 0,
            ),
            daemon=True,
        )
        process.start()
        return process

    def _new_worker(self, wid: int) -> _Worker:
        return _Worker(wid, self._spawn)

    def _replace(self, worker: _Worker) -> None:
        try:
            worker.kill()
        except OSError:  # pragma: no cover - already-dead edge
            pass
        self._workers[worker.wid] = self._new_worker(worker.wid)

    # -- task queue -------------------------------------------------------

    def _enqueue(self, items, not_before: float = 0.0, front: bool = False):
        task = [self._chunk_seq, list(items), not_before]
        self._chunk_seq += 1
        if front:
            self._pending.insert(0, task)
        else:
            self._pending.append(task)

    def _pop_ready(self, now: float):
        for pos, task in enumerate(self._pending):
            if task[2] <= now:
                return self._pending.pop(pos)
        return None

    def _soonest_pending(self) -> float | None:
        if not self._pending:
            return None
        return min(task[2] for task in self._pending)

    # -- failure handling -------------------------------------------------

    def _record(self, index: int, record) -> None:
        self._completed[index] = record

    def _quarantine(self, index: int, kind: str, detail: str) -> None:
        """Retire a job that failed past the retry budget, as data."""
        job = self.jobs[index]
        attempts = self._attempts.get(index, 0)
        if kind == "hang":
            row = timeout_row(
                index,
                job,
                f"killed by the sweep supervisor: exceeded "
                f"job_timeout_s={self.tol.job_timeout_s} on each of "
                f"{attempts} attempts",
            )
            self._record(index, JobRecord(index, row, None))
            return
        message = (
            f"worker process died on each of {attempts} attempts "
            f"running job {index} ({detail}); quarantined after "
            f"max_retries={self.tol.max_retries}"
        )
        if not self.collect_errors:
            self._record(index, _Raise(WorkerCrashError(message)))
            return
        error = BatchError(kind=WORKER_CRASH_KIND, error=message)
        row = summarize_result(index, job, error)
        self._record(
            index,
            JobRecord(index, row, error if self.want_results else None),
        )

    def _fail(self, index: int, kind: str, detail: str, now: float) -> None:
        """Charge one failed attempt; requeue with backoff or quarantine."""
        attempts = self._attempts.get(index, 0) + 1
        self._attempts[index] = attempts
        if attempts > self.tol.max_retries:
            self._quarantine(index, kind, detail)
            return
        # Singleton requeue: any future worker death while running this
        # job is attributable to it even if the "start" message is lost.
        self._enqueue(
            [(index, self.jobs[index])],
            not_before=now + self.tol.backoff(attempts),
            front=True,
        )

    def _on_worker_death(
        self, worker: _Worker, kind: str, detail: str, now: float
    ) -> None:
        """Requeue the dead worker's unfinished jobs; respawn it."""
        if worker.task is not None:
            _chunk_id, items = worker.task
            remaining = [
                (index, job)
                for index, job in items
                if index not in self._completed
            ]
            culprit = worker.current
            if culprit is not None and culprit in self._completed:
                culprit = None  # its row made it out before the death
            if culprit is None and len(remaining) == 1:
                culprit = remaining[0][0]
            for index, job in remaining:
                if index == culprit:
                    self._fail(index, kind, detail, now)
                else:
                    self._enqueue([(index, job)])
        self._replace(worker)

    # -- message handling -------------------------------------------------

    def _handle(self, worker: _Worker, msg, now: float) -> None:
        tag = msg[0]
        if tag == "start":
            worker.current = msg[1]
            worker.started_at = now
        elif tag == "row":
            _tag, index, row, result, witness = msg
            if row is None:
                # Arena mode: decode the acknowledged slot right away; a
                # torn write reads as unwritten and costs one retry.
                from repro.errors import ArenaSlotUnwritten

                try:
                    row = self.arena.read_row(index)
                except ArenaSlotUnwritten:
                    worker.current = None
                    self._fail(
                        index, "crash", "arena slot unwritten", now
                    )
                    return
            self._record(index, JobRecord(index, row, result, witness))
            worker.current = None
        elif tag == "error":
            _tag, index, exc, dropped = msg
            if dropped:
                self.payload_drops += 1
            self._record(index, _Raise(exc))
            worker.current = None
        elif tag == "done":
            worker.task = None
            worker.current = None

    def _drain_conn(self, worker: _Worker, now: float) -> bool:
        """Pump every buffered message; False when the pipe hit EOF."""
        try:
            while worker.conn.poll():
                self._handle(worker, worker.conn.recv(), now)
        except (EOFError, OSError):
            return False
        return True

    def _death_detail(self, worker: _Worker) -> str:
        """Describe a dead worker; reap it first so exitcode is real."""
        worker.process.join(timeout=1.0)
        return f"exit code {worker.process.exitcode}"

    # -- dispatch ---------------------------------------------------------

    def _run_inline(self, items) -> None:
        """In-parent fallback for chunks whose programs cannot pickle.

        No faults fire here (an injected crash would kill the parent)
        and no retries apply: in-parent execution cannot lose a worker.
        """
        for index, job in items:
            result = run_job(job, self.collect_errors)
            row = summarize_result(index, job, result)
            witness = (
                mine_witness_payload(job, result)
                if self.ctx.mine_witnesses
                else None
            )
            # The record carries the row directly (no arena round-trip
            # needed in-parent), matching the unsupervised fallback.
            self._record(
                index,
                JobRecord(
                    index,
                    row,
                    result
                    if self.want_results and self.arena is None
                    else None,
                    witness,
                ),
            )

    def _dispatch(self, now: float) -> None:
        for worker in self._workers:
            if not worker.idle:
                continue
            task = self._pop_ready(now)
            if task is None:
                return
            chunk_id, items, _not_before = task
            if self.probe is not None and not self.probe.chunk_picklable(
                items
            ):
                self._run_inline(items)
                continue
            worker.task = (chunk_id, items)
            worker.current = None
            try:
                worker.conn.send((chunk_id, items))
            except (BrokenPipeError, OSError):
                # Died before we even spoke to it: nothing was running,
                # so requeue the whole chunk unpenalized and respawn.
                worker.task = None
                self._enqueue(items, front=True)
                self._replace(worker)

    # -- main loop --------------------------------------------------------

    def run(self) -> Iterator[JobRecord]:
        """Execute every job; yield records strictly in job order."""
        n = len(self.jobs)
        if n == 0:
            return
        try:
            self._workers = [
                self._new_worker(wid) for wid in range(self.n_workers)
            ]
            for chunk in iter_chunks(self.jobs, self.chunk_size):
                self._enqueue(chunk)
            next_emit = 0
            while next_emit < n:
                now = time.monotonic()
                self._dispatch(now)
                conns = {
                    worker.conn: worker
                    for worker in self._workers
                    if not worker.idle
                }
                if conns:
                    ready = _conn_wait(
                        list(conns), timeout=self.tol.poll_s
                    )
                else:
                    ready = []
                    soonest = self._soonest_pending()
                    if soonest is not None and soonest > now:
                        time.sleep(min(soonest - now, self.tol.poll_s))
                now = time.monotonic()
                for conn in ready:
                    worker = conns[conn]
                    if not self._drain_conn(worker, now):
                        self._on_worker_death(
                            worker, "crash", self._death_detail(worker), now
                        )
                if self.tol.job_timeout_s is not None:
                    for worker in self._workers:
                        if (
                            worker.current is None
                            or now - worker.started_at
                            <= self.tol.job_timeout_s
                        ):
                            continue
                        # Salvage rows it already produced before judging.
                        if not self._drain_conn(worker, now):
                            self._on_worker_death(
                                worker,
                                "crash",
                                self._death_detail(worker),
                                now,
                            )
                            continue
                        if worker.current is None:
                            continue  # finished during the drain
                        self._on_worker_death(
                            worker, "hang", "job timeout", now
                        )
                while next_emit in self._completed:
                    record = self._completed.pop(next_emit)
                    next_emit += 1
                    if isinstance(record, _Raise):
                        raise record.exc
                    yield record
        finally:
            for worker in self._workers:
                try:
                    worker.kill()
                except OSError:  # pragma: no cover - teardown race
                    pass
            self._workers = []


def run_supervised(
    jobs,
    *,
    want_results: bool,
    collect_errors: bool,
    workers: int,
    chunk_size: int,
    ctx: WorkerContext,
    tolerance: Tolerance,
    arena: SummaryArena | None = None,
    probe=None,
) -> Iterator[JobRecord]:
    """Run ``jobs`` under a :class:`Supervisor`; yield ordered records."""
    supervisor = Supervisor(
        jobs,
        want_results=want_results,
        collect_errors=collect_errors,
        workers=workers,
        chunk_size=chunk_size,
        ctx=ctx,
        tolerance=tolerance,
        arena=arena,
        probe=probe,
    )
    return supervisor.run()
