"""In-process execution: the reference backend.

Not a consolation prize: repeated jobs over the same program hit the
content-keyed analysis cache (:mod:`repro.perf`), which is where
ensemble time went historically. Every other backend's rows must match
this one byte for byte.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.sweep.backends import (
    ExecutionBackend,
    JobRecord,
    Tolerance,
    WorkerContext,
    register_backend,
)
from repro.sweep.jobs import SimJob, run_job
from repro.sweep.summary import summarize_result


@register_backend
class SerialBackend(ExecutionBackend):
    """Run every job in the current process, in order.

    ``tolerance`` is accepted and ignored: there are no worker processes
    to lose, kill or retry, so the serial backend is the fault-free
    reference that supervised runs are differential-tested against.
    """

    name = "serial"

    def execute(
        self,
        jobs: Iterable[SimJob],
        *,
        want_results: bool,
        collect_errors: bool,
        workers: int,
        chunk_size: int,
        ctx: WorkerContext,
        tolerance: Tolerance | None = None,
    ) -> Iterator[JobRecord]:
        ctx.apply()
        # The full result is attached even when the caller did not ask
        # for results: it already exists in-process (nothing is shipped
        # or retained — the consumer drops it with the record), and the
        # session's witness miner reads deadlock diagnoses off streamed
        # records for free because of it.
        for index, job in enumerate(jobs):
            result = run_job(job, collect_errors)
            row = summarize_result(index, job, result)
            yield JobRecord(index, row, result)
