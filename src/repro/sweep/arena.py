"""Fixed-width RunSummary rows in a shared-memory arena.

The ``shm`` execution backend allocates one
:class:`multiprocessing.shared_memory.SharedMemory` segment sized
``n_jobs * ROW_SIZE`` bytes. Workers encode each finished job's
:class:`~repro.sweep.summary.RunSummary` directly into the slot indexed
by the job's position — slots are disjoint per job, so no locking is
needed — and the parent decodes rows straight out of the mapping,
eliminating the per-result pickle round-trip through the pool pipe.

Row layout (little-endian, :data:`ROW_SIZE` = 256 bytes per slot)::

    offset  size  field
    ------  ----  -----------------------------------------------
         0     1  flags (WRITTEN | COMPLETED | DEADLOCKED |
                  TIMED_OUT | HAS_KIND | HAS_ERROR)
         1     8  time       (int64)
         9     8  events     (int64)
        17     8  words      (int64)
        25     4  queues     (int32)
        29     4  capacity   (int32)
        33     1  policy length      34..56   policy (utf-8)
        57     1  error_kind length  58..88   error_kind (utf-8)
        89     2  error length       91..255  error (utf-8)

The job index is implicit in the slot position. Strings longer than
their fixed field (a pathological error message, an exotic policy name)
make :func:`encode_row` return ``False`` — the worker then falls back to
shipping that one row through the pool pipe, so arena rows are always
*byte-identical* to what the serial backend produces, never truncated.
A missing ``WRITTEN`` flag on decode raises
:class:`~repro.errors.ArenaSlotUnwritten`: a slot that was never filled
means a crashed worker or a torn write, not a row of zeros — the
supervised execution path catches that error and requeues the job.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

from repro.errors import ArenaSlotUnwritten, ReproError
from repro.sweep.summary import RunSummary

#: Per-string byte budgets (utf-8 encoded).
POLICY_CAP = 23
KIND_CAP = 31
ERROR_CAP = 165

_ROW = struct.Struct(
    f"<Bqqqii B{POLICY_CAP}s B{KIND_CAP}s H{ERROR_CAP}s"
)
#: Bytes per arena slot.
ROW_SIZE = _ROW.size

_WRITTEN = 1
_COMPLETED = 2
_DEADLOCKED = 4
_TIMED_OUT = 8
_HAS_KIND = 16
_HAS_ERROR = 32

#: int64 / int32 bounds a row's counters must fit (they always do in
#: practice: times and event counts are simulation-bounded).
_I64 = 1 << 63
_I32 = 1 << 31


def encode_row(buf, slot: int, row: RunSummary) -> bool:
    """Encode ``row`` into ``buf`` at ``slot``; False if it cannot fit."""
    policy = row.policy.encode()
    kind = (row.error_kind or "").encode()
    error = (row.error or "").encode()
    if len(policy) > POLICY_CAP or len(kind) > KIND_CAP or len(error) > ERROR_CAP:
        return False
    if not (
        -_I64 <= row.time < _I64
        and -_I64 <= row.events < _I64
        and -_I64 <= row.words < _I64
        and -_I32 <= row.queues < _I32
        and -_I32 <= row.capacity < _I32
    ):
        return False
    flags = _WRITTEN
    if row.completed:
        flags |= _COMPLETED
    if row.deadlocked:
        flags |= _DEADLOCKED
    if row.timed_out:
        flags |= _TIMED_OUT
    if row.error_kind is not None:
        flags |= _HAS_KIND
    if row.error is not None:
        flags |= _HAS_ERROR
    _ROW.pack_into(
        buf,
        slot * ROW_SIZE,
        flags,
        row.time,
        row.events,
        row.words,
        row.queues,
        row.capacity,
        len(policy),
        policy,
        len(kind),
        kind,
        len(error),
        error,
    )
    return True


def decode_row(buf, slot: int, index: int) -> RunSummary:
    """Decode the row at ``slot`` back into a :class:`RunSummary`."""
    (
        flags,
        time,
        events,
        words,
        queues,
        capacity,
        policy_len,
        policy,
        kind_len,
        kind,
        error_len,
        error,
    ) = _ROW.unpack_from(buf, slot * ROW_SIZE)
    if not flags & _WRITTEN:
        raise ArenaSlotUnwritten(
            f"shm arena slot {slot} was never written (worker died?)"
        )
    return RunSummary(
        index=index,
        completed=bool(flags & _COMPLETED),
        deadlocked=bool(flags & _DEADLOCKED),
        timed_out=bool(flags & _TIMED_OUT),
        time=time,
        events=events,
        words=words,
        policy=policy[:policy_len].decode(),
        queues=queues,
        capacity=capacity,
        error_kind=kind[:kind_len].decode() if flags & _HAS_KIND else None,
        error=error[:error_len].decode() if flags & _HAS_ERROR else None,
    )


class SummaryArena:
    """One shared-memory segment of ``n_rows`` fixed-width summary slots."""

    def __init__(
        self, shm: shared_memory.SharedMemory, n_rows: int, owner: bool
    ) -> None:
        self._shm = shm
        self.n_rows = n_rows
        self._owner = owner

    @classmethod
    def create(cls, n_rows: int) -> "SummaryArena":
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, n_rows) * ROW_SIZE
        )
        return cls(shm, n_rows, owner=True)

    @classmethod
    def attach(cls, name: str, n_rows: int) -> "SummaryArena":
        return cls(
            shared_memory.SharedMemory(name=name), n_rows, owner=False
        )

    @property
    def name(self) -> str:
        return self._shm.name

    def _check(self, slot: int) -> None:
        if not 0 <= slot < self.n_rows:
            raise ReproError(
                f"arena slot {slot} out of range [0, {self.n_rows})"
            )

    def write_row(self, slot: int, row: RunSummary) -> bool:
        """Encode ``row`` at ``slot``; False when its strings overflow."""
        self._check(slot)
        return encode_row(self._shm.buf, slot, row)

    def read_row(self, slot: int, index: int | None = None) -> RunSummary:
        """Decode the row at ``slot`` (``index`` defaults to the slot).

        Raises :class:`~repro.errors.ArenaSlotUnwritten` when the slot
        was never written — the signature of a worker that died (or a
        torn write) before publishing its row; the supervised execution
        path catches exactly that and requeues the job.
        """
        self._check(slot)
        return decode_row(self._shm.buf, slot, slot if index is None else index)

    def clear_slot(self, slot: int) -> None:
        """Zero a slot back to the unwritten state.

        Used when a job is requeued after its row proved unreadable (and
        by fault injection to model a torn write): the retry's fresh
        ``write_row`` then publishes atomically over a clean slot.
        """
        self._check(slot)
        start = slot * ROW_SIZE
        self._shm.buf[start:start + ROW_SIZE] = bytes(ROW_SIZE)

    def close(self) -> None:
        """Unmap the segment in this process.

        Worker-side attachments register the segment name with the
        resource tracker exactly like the owner did; the tracker's
        cache is a per-name set shared (via fork) by the whole pool, so
        those duplicate registrations coalesce and the owner's
        :meth:`unlink` clears the single entry. Do NOT unregister here:
        that would delete the owner's registration out from under it
        and forfeit crash cleanup.
        """
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only, after every worker closed)."""
        if self._owner:
            self._shm.unlink()

    def __enter__(self) -> "SummaryArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owner:
            self.unlink()
