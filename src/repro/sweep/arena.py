"""Fixed-width RunSummary rows in a growable shared-memory arena.

The ``shm`` execution backend stores one row per job in shared memory.
Storage is *segmented*: the arena is a sequence of
:class:`multiprocessing.shared_memory.SharedMemory` segments, each
holding :attr:`SummaryArena.segment_rows` fixed-width slots, allocated
on demand as the owner calls :meth:`SummaryArena.ensure_rows`. A lazy
job stream therefore never needs to be materialized to size the arena
up front — peak shared memory is bounded by the handful of segments
spanning the in-flight window, not by the sweep size, and fully drained
segments are released early via :meth:`SummaryArena.retire_below`.

Workers encode each finished job's
:class:`~repro.sweep.summary.RunSummary` directly into the slot indexed
by the job's position — slots are disjoint per job, so no locking is
needed — and the parent decodes rows straight out of the mapping,
eliminating the per-result pickle round-trip through the pool pipe.
Worker attachments resolve segments lazily by derived name
(``<base>``, ``<base>_s1``, ``<base>_s2``, ...), so a worker only maps
the segments its chunk actually touches.

Row layout (little-endian, :data:`ROW_SIZE` = 256 bytes per slot)::

    offset  size  field
    ------  ----  -----------------------------------------------
         0     1  flags (WRITTEN | COMPLETED | DEADLOCKED |
                  TIMED_OUT | HAS_KIND | HAS_ERROR)
         1     8  time       (int64)
         9     8  events     (int64)
        17     8  words      (int64)
        25     4  queues     (int32)
        29     4  capacity   (int32)
        33     1  policy length      34..56   policy (utf-8)
        57     1  error_kind length  58..88   error_kind (utf-8)
        89     2  error length       91..255  error (utf-8)

The job index is implicit in the slot position. Strings longer than
their fixed field (a pathological error message, an exotic policy name)
make :func:`encode_row` return ``False`` — the worker then falls back to
shipping that one row through the pool pipe, so arena rows are always
*byte-identical* to what the serial backend produces, never truncated.
A missing ``WRITTEN`` flag on decode raises
:class:`~repro.errors.ArenaSlotUnwritten`: a slot that was never filled
means a crashed worker or a torn write, not a row of zeros — the
supervised execution path catches that error and requeues the job.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

from repro.errors import ArenaSlotUnwritten, ReproError
from repro.sweep.summary import RunSummary

#: Per-string byte budgets (utf-8 encoded).
POLICY_CAP = 23
KIND_CAP = 31
ERROR_CAP = 165

_ROW = struct.Struct(
    f"<Bqqqii B{POLICY_CAP}s B{KIND_CAP}s H{ERROR_CAP}s"
)
#: Bytes per arena slot.
ROW_SIZE = _ROW.size

_WRITTEN = 1
_COMPLETED = 2
_DEADLOCKED = 4
_TIMED_OUT = 8
_HAS_KIND = 16
_HAS_ERROR = 32

#: Rows per shared-memory segment when the caller does not choose.
#: 2048 slots x 256 bytes = 512 KiB of *virtual* size per segment —
#: tmpfs commits pages only as rows are written, so a mostly-unwritten
#: trailing segment costs nearly nothing.
DEFAULT_SEGMENT_ROWS = 2048

#: int64 / int32 bounds a row's counters must fit (they always do in
#: practice: times and event counts are simulation-bounded).
_I64 = 1 << 63
_I32 = 1 << 31


def encode_row(buf, slot: int, row: RunSummary) -> bool:
    """Encode ``row`` into ``buf`` at ``slot``; False if it cannot fit."""
    policy = row.policy.encode()
    kind = (row.error_kind or "").encode()
    error = (row.error or "").encode()
    if len(policy) > POLICY_CAP or len(kind) > KIND_CAP or len(error) > ERROR_CAP:
        return False
    if not (
        -_I64 <= row.time < _I64
        and -_I64 <= row.events < _I64
        and -_I64 <= row.words < _I64
        and -_I32 <= row.queues < _I32
        and -_I32 <= row.capacity < _I32
    ):
        return False
    flags = _WRITTEN
    if row.completed:
        flags |= _COMPLETED
    if row.deadlocked:
        flags |= _DEADLOCKED
    if row.timed_out:
        flags |= _TIMED_OUT
    if row.error_kind is not None:
        flags |= _HAS_KIND
    if row.error is not None:
        flags |= _HAS_ERROR
    _ROW.pack_into(
        buf,
        slot * ROW_SIZE,
        flags,
        row.time,
        row.events,
        row.words,
        row.queues,
        row.capacity,
        len(policy),
        policy,
        len(kind),
        kind,
        len(error),
        error,
    )
    return True


def decode_row(buf, slot: int, index: int) -> RunSummary:
    """Decode the row at ``slot`` back into a :class:`RunSummary`."""
    (
        flags,
        time,
        events,
        words,
        queues,
        capacity,
        policy_len,
        policy,
        kind_len,
        kind,
        error_len,
        error,
    ) = _ROW.unpack_from(buf, slot * ROW_SIZE)
    if not flags & _WRITTEN:
        raise ArenaSlotUnwritten(
            f"shm arena slot {slot} was never written (worker died?)"
        )
    return RunSummary(
        index=index,
        completed=bool(flags & _COMPLETED),
        deadlocked=bool(flags & _DEADLOCKED),
        timed_out=bool(flags & _TIMED_OUT),
        time=time,
        events=events,
        words=words,
        policy=policy[:policy_len].decode(),
        queues=queues,
        capacity=capacity,
        error_kind=kind[:kind_len].decode() if flags & _HAS_KIND else None,
        error=error[:error_len].decode() if flags & _HAS_ERROR else None,
    )


class SummaryArena:
    """Fixed-width summary slots across growable shared-memory segments.

    The owner (the backend parent) creates segment 0 and grows capacity
    with :meth:`ensure_rows`; attachers (workers) resolve segments by
    derived name on first touch. ``n_rows`` is the number of *valid*
    slots — the bound :meth:`write_row`/:meth:`read_row` enforce — while
    allocated capacity is always a whole number of segments.
    """

    def __init__(
        self,
        segments: list,
        n_rows: int,
        owner: bool,
        segment_rows: int,
        base_name: str,
    ) -> None:
        self._segments = segments  # SharedMemory | None per segment index
        self.n_rows = n_rows
        self._owner = owner
        self.segment_rows = segment_rows
        self._base_name = base_name
        self._retired = 0  # leading segments already closed + unlinked
        #: High-water mark of simultaneously live (allocated, unretired)
        #: segments — the arena's true peak shared-memory footprint in
        #: units of ``segment_rows * ROW_SIZE`` bytes.
        self.max_live_segments = 1

    @classmethod
    def create(
        cls, n_rows: int, *, segment_rows: int | None = None
    ) -> "SummaryArena":
        """Allocate an owner arena with capacity for ``n_rows`` slots.

        ``segment_rows`` defaults to :data:`DEFAULT_SEGMENT_ROWS`; it is
        keyword-only so ``create(n)`` keeps its long-standing shape.
        Segment 0 is always allocated (its auto-generated name is the
        arena's :attr:`name`); further segments follow on demand.
        """
        rows = segment_rows if segment_rows is not None else DEFAULT_SEGMENT_ROWS
        if rows < 1:
            raise ReproError(f"segment_rows must be >= 1, got {rows}")
        first = shared_memory.SharedMemory(
            create=True, size=rows * ROW_SIZE
        )
        arena = cls([first], 0, True, rows, first.name)
        arena.ensure_rows(n_rows)
        return arena

    @classmethod
    def attach(
        cls,
        name: str,
        n_rows: int,
        *,
        segment_rows: int | None = None,
        lazy: bool = False,
    ) -> "SummaryArena":
        """Attach to an existing arena by its base (segment 0) name.

        With ``lazy`` unset, segment 0 is opened eagerly so attaching to
        an unlinked arena raises :class:`FileNotFoundError` immediately.
        Streaming workers pass ``lazy=True``: the parent may already
        have retired segment 0 by the time a late chunk dispatches, and
        that chunk's slots live in later segments anyway — segments are
        then only mapped when a slot in them is touched.
        """
        rows = segment_rows if segment_rows is not None else DEFAULT_SEGMENT_ROWS
        if lazy:
            return cls([None], n_rows, False, rows, name)
        first = shared_memory.SharedMemory(name=name)
        return cls([first], n_rows, False, rows, name)

    @property
    def name(self) -> str:
        """The base name workers attach by (segment 0's name)."""
        return self._base_name

    def _seg_name(self, seg: int) -> str:
        return self._base_name if seg == 0 else f"{self._base_name}_s{seg}"

    def ensure_rows(self, n_rows: int) -> None:
        """Grow capacity (owner only) so slots ``[0, n_rows)`` exist."""
        if not self._owner:
            raise ReproError("only the arena owner can grow it")
        while len(self._segments) * self.segment_rows < n_rows:
            seg = len(self._segments)
            self._segments.append(
                shared_memory.SharedMemory(
                    create=True,
                    name=self._seg_name(seg),
                    size=self.segment_rows * ROW_SIZE,
                )
            )
        if n_rows > self.n_rows:
            self.n_rows = n_rows
        live = len(self._segments) - self._retired
        if live > self.max_live_segments:
            self.max_live_segments = live

    def retire_below(self, n_rows: int) -> None:
        """Release segments wholly below row ``n_rows`` (owner only).

        The streaming backend calls this after draining a chunk: every
        slot below the drain point has been decoded and will never be
        read or written again, so its segment is closed *and unlinked*
        — tmpfs pages are freed immediately, keeping a long stream's
        peak shared memory at a few live segments regardless of sweep
        size. Touching a retired slot afterwards is a hard error.
        """
        if not self._owner:
            raise ReproError("only the arena owner can retire segments")
        while (
            self._retired < len(self._segments)
            and (self._retired + 1) * self.segment_rows <= n_rows
        ):
            handle = self._segments[self._retired]
            if handle is not None:
                handle.close()
                handle.unlink()
                self._segments[self._retired] = None
            self._retired += 1

    def _check(self, slot: int) -> None:
        if not 0 <= slot < self.n_rows:
            raise ReproError(
                f"arena slot {slot} out of range [0, {self.n_rows})"
            )

    def _segment(self, seg: int):
        """The mapped segment holding ``seg``, attaching lazily."""
        if seg < self._retired:
            raise ReproError(
                f"arena segment {seg} was already retired"
            )
        while seg >= len(self._segments):
            self._segments.append(None)
        handle = self._segments[seg]
        if handle is None:
            # Only attachers have unmapped live segments; the owner
            # allocates every segment in ensure_rows.
            try:
                handle = shared_memory.SharedMemory(name=self._seg_name(seg))
            except FileNotFoundError:
                raise ArenaSlotUnwritten(
                    f"shm arena segment {seg} does not exist "
                    "(never allocated, or already retired)"
                ) from None
            self._segments[seg] = handle
        return handle

    def write_row(self, slot: int, row: RunSummary) -> bool:
        """Encode ``row`` at ``slot``; False when its strings overflow."""
        self._check(slot)
        handle = self._segment(slot // self.segment_rows)
        return encode_row(handle.buf, slot % self.segment_rows, row)

    def read_row(self, slot: int, index: int | None = None) -> RunSummary:
        """Decode the row at ``slot`` (``index`` defaults to the slot).

        Raises :class:`~repro.errors.ArenaSlotUnwritten` when the slot
        was never written — the signature of a worker that died (or a
        torn write) before publishing its row; the supervised execution
        path catches exactly that and requeues the job.
        """
        self._check(slot)
        handle = self._segment(slot // self.segment_rows)
        return decode_row(
            handle.buf,
            slot % self.segment_rows,
            slot if index is None else index,
        )

    def clear_slot(self, slot: int) -> None:
        """Zero a slot back to the unwritten state.

        Used when a job is requeued after its row proved unreadable (and
        by fault injection to model a torn write): the retry's fresh
        ``write_row`` then publishes atomically over a clean slot.
        """
        self._check(slot)
        handle = self._segment(slot // self.segment_rows)
        start = (slot % self.segment_rows) * ROW_SIZE
        handle.buf[start:start + ROW_SIZE] = bytes(ROW_SIZE)

    def close(self) -> None:
        """Unmap every attached segment in this process.

        Worker-side attachments register each segment name with the
        resource tracker exactly like the owner did; the tracker's
        cache is a per-name set shared (via fork) by the whole pool, so
        those duplicate registrations coalesce and the owner's
        :meth:`unlink` (or :meth:`retire_below`) clears the single
        entry. Do NOT unregister here: that would delete the owner's
        registration out from under it and forfeit crash cleanup.
        """
        for handle in self._segments:
            if handle is not None:
                handle.close()

    def unlink(self) -> None:
        """Destroy every live segment (owner only, after workers closed)."""
        if self._owner:
            for handle in self._segments:
                if handle is not None:
                    handle.unlink()

    def __enter__(self) -> "SummaryArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owner:
            self.unlink()
