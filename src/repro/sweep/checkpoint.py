"""Checkpointed, resumable sweeps: periodic atomic snapshots of progress.

A million-job provisioning sweep that dies at job 900,000 — SIGKILL,
power loss, OOM — should cost 100,000 jobs, not a million. This module
snapshots the two things a streaming sweep actually accumulates:

* every reducer's exact state (:meth:`~repro.sweep.reducers.
  StreamReducer.snapshot_state` — *not* ``merge``, whose t-digest
  recompression is only rank-error-exact), and
* a completed-job bitmap, keyed by the sweep's **grid fingerprint** (a
  content hash of every job's program + run parameters plus the reducer
  stack), so a checkpoint can never be resumed against a different
  sweep by accident.

Because :class:`~repro.sweep.plan.SweepSession` folds rows strictly in
job order, the bitmap is always a prefix of the grid and a resumed run
feeds the remaining rows in the same order the uninterrupted run would
have — the final reducer summaries are therefore byte-identical to a
never-interrupted sweep, which is pinned by differential tests.

Durability follows :mod:`repro.perf.disk_cache`: snapshots are written
to a temporary file and published with :func:`os.replace` (atomic on
POSIX), carry a BLAKE2 checksum over the pickled payload, and any
corruption — truncation, bit flips, foreign bytes — reads as *absent*
(clean restart), never as an error, but is counted
(:meth:`SweepCheckpoint.stats`) rather than silently conflated with a
missing file. Deserialization failures are narrowed to the corruption
classes (:data:`_CORRUPT_LOAD_ERRORS`): a ``MemoryError`` or a bug in
a reducer's unpickling propagates instead of masquerading as a clean
restart. Only a well-formed checkpoint for a
*different* sweep raises (:class:`~repro.errors.CheckpointError`):
silently discarding it would silently re-run the sweep, and silently
using it would merge unrelated aggregates.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Sequence

from repro.errors import CheckpointError
from repro.sweep.jobs import SimJob, job_fingerprint
from repro.sweep.reducers import StreamReducer

#: Bump when the snapshot payload layout changes; old checkpoints then
#: read as absent instead of deserializing into garbage.
FORMAT_VERSION = 1

_MAGIC = b"RSWPCKPT"
_DIGEST_SIZE = 16


def sweep_fingerprint(
    jobs: Sequence[SimJob], reducers: Sequence[StreamReducer]
) -> str:
    """Content hash of the whole sweep: every job plus the reducer stack.

    Two invocations with the same program file, grid flags and reducers
    agree; anything that would change a row or an aggregate — another
    program, another policy list, a different reducer set — does not.
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(f"v{FORMAT_VERSION}:{len(jobs)}".encode())
    for job in jobs:
        h.update(job_fingerprint(job).encode())
        h.update(b"\x00")
    for reducer in reducers:
        h.update(type(reducer).__name__.encode())
        h.update(b"\x01")
    return h.hexdigest()


#: What corrupt checkpoint bytes can raise while deserializing — the
#: same classes :mod:`repro.perf.disk_cache` narrows to: pickle framing
#: (``UnpicklingError``/``EOFError``/``ValueError``), and payloads
#: referencing renamed or missing classes across versions
#: (``AttributeError``/``ImportError``/``IndexError``). Anything
#: outside this set — ``MemoryError``, ``KeyboardInterrupt``, a bug in
#: a reducer's ``__setstate__`` — is NOT corruption and must propagate:
#: swallowing it would silently read a real failure as "absent
#: checkpoint = clean restart" and redo the whole sweep.
_CORRUPT_LOAD_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    ValueError,
    AttributeError,
    ImportError,
    IndexError,
)


def _load_raw(path: str) -> tuple[dict | None, bool]:
    """``(payload, rejected)``: the state dict, or why there is none.

    ``(dict, False)`` for a well-formed file, ``(None, False)`` for a
    missing one (the normal cold start), ``(None, True)`` for a file
    that exists but failed validation — bad magic, checksum mismatch,
    unpicklable payload, foreign version — so the caller can count
    rejected loads instead of conflating them with absence.
    """
    try:
        blob = open(path, "rb").read()
    except FileNotFoundError:
        return None, False
    except OSError:
        return None, True  # unreadable is not the same as absent
    if len(blob) < len(_MAGIC) + _DIGEST_SIZE or not blob.startswith(_MAGIC):
        return None, True
    digest = blob[len(_MAGIC):len(_MAGIC) + _DIGEST_SIZE]
    payload = blob[len(_MAGIC) + _DIGEST_SIZE:]
    if hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest() != digest:
        return None, True  # truncated or bit-flipped: verified pre-unpickle
    try:
        state = pickle.loads(payload)
    except _CORRUPT_LOAD_ERRORS:
        return None, True
    if (
        not isinstance(state, dict)
        or state.get("version") != FORMAT_VERSION
    ):
        return None, True
    return state, False


class SweepCheckpoint:
    """One sweep's progress file: reducer states + a done bitmap.

    The writer side of the contract: :meth:`mark_done` after each row is
    folded, :meth:`maybe_save` on the configured cadence, :meth:`save`
    at teardown (the session calls it from a ``finally``, so Ctrl-C and
    ordinary exceptions both leave a fresh snapshot; only a hard kill
    falls back to the last periodic one).
    """

    def __init__(
        self,
        path: str,
        fingerprint: str,
        n_jobs: int,
        every: int = 64,
    ) -> None:
        self.path = str(path)
        self.fingerprint = fingerprint
        self.n_jobs = n_jobs
        self.every = max(1, every)
        self.done = bytearray((n_jobs + 7) // 8)
        self._unsaved = 0
        #: checkpoint files that existed but failed validation at
        #: :meth:`resume` (treated as absent for recovery, but counted —
        #: a rejected load is observable, never silent)
        self.loads_rejected = 0

    # -- bitmap -----------------------------------------------------------

    def is_done(self, index: int) -> bool:
        return bool(self.done[index >> 3] & (1 << (index & 7)))

    def mark_done(self, index: int) -> None:
        self.done[index >> 3] |= 1 << (index & 7)
        self._unsaved += 1

    def done_count(self) -> int:
        return sum(bin(byte).count("1") for byte in self.done)

    def remaining(self) -> list[int]:
        """Indices still to run, ascending (job order)."""
        return [i for i in range(self.n_jobs) if not self.is_done(i)]

    # -- persistence ------------------------------------------------------

    def save(self, reducers: Sequence[StreamReducer]) -> None:
        """Atomically publish a snapshot (temp file + ``os.replace``)."""
        state = {
            "version": FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "n_jobs": self.n_jobs,
            "done": bytes(self.done),
            "reducers": [
                (type(reducer).__name__, reducer.snapshot_state())
                for reducer in reducers
            ],
        }
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".ckpt-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(digest)
                handle.write(payload)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._unsaved = 0

    def maybe_save(self, reducers: Sequence[StreamReducer]) -> bool:
        """Save if ``every`` rows finished since the last snapshot."""
        if self._unsaved >= self.every:
            self.save(reducers)
            return True
        return False

    def resume(self, reducers: Sequence[StreamReducer]) -> int:
        """Load the checkpoint file and restore state in place.

        Returns the number of already-completed jobs (0 when the file is
        missing or corrupt — a clean restart). Raises
        :class:`~repro.errors.CheckpointError` when a *valid* checkpoint
        belongs to a different sweep or reducer stack.
        """
        state, rejected = _load_raw(self.path)
        if rejected:
            self.loads_rejected += 1
        if state is None:
            return 0
        if state["fingerprint"] != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path!r} belongs to a different sweep "
                f"(grid fingerprint {state['fingerprint']} != "
                f"{self.fingerprint}); refusing to resume"
            )
        if state["n_jobs"] != self.n_jobs:
            raise CheckpointError(
                f"checkpoint {self.path!r} covers {state['n_jobs']} jobs, "
                f"this sweep has {self.n_jobs}"
            )
        saved = state["reducers"]
        if len(saved) != len(reducers) or any(
            name != type(reducer).__name__
            for (name, _state), reducer in zip(saved, reducers)
        ):
            raise CheckpointError(
                f"checkpoint {self.path!r} was taken with a different "
                f"reducer stack ({[name for name, _ in saved]} != "
                f"{[type(r).__name__ for r in reducers]})"
            )
        for (_name, reducer_state), reducer in zip(saved, reducers):
            reducer.restore_state(reducer_state)
        self.done = bytearray(state["done"])
        self._unsaved = 0
        return self.done_count()

    def stats(self) -> dict:
        """Observability counters, mirroring ``DiskCacheTier.stats``."""
        return {
            "n_jobs": self.n_jobs,
            "done": self.done_count(),
            "loads_rejected": self.loads_rejected,
        }
