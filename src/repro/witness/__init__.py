"""Deadlock witnesses: certificates mined from runs, reused by sweeps.

The deadlock detector already explains every deadlocked run with a
wait-for cycle; this package turns that explanation into a *reusable*
artifact. :func:`mine_witness` normalizes one deadlocked
:class:`~repro.sim.result.SimulationResult` into a
:class:`DeadlockWitness` — the blocked subprogram slice, the policy,
and the capacity band the deadlock provably covers — and
:class:`WitnessStore` persists certificates with subsumption lookup, so
a provisioning sweep consults the store before dispatching each job and
emits known-deadlocked rows without simulating them
(:mod:`repro.sweep.plan` wires it through ``SweepPlan.witness_store``;
the CLI through ``repro sweep --witness-store`` and ``repro witness
{ls,show,prune}``).

Soundness boundaries live in :mod:`repro.witness.certificate`: only
monotone policies (static) are ever pruned — FCFS is exempt by
construction — and rows are synthesized only inside the witnessed
trace-replay band, so pruned rows are byte-identical to simulated ones.
"""

from repro.witness.certificate import (
    DeadlockWitness,
    mine_witness,
    witness_scope,
)
from repro.witness.store import WitnessStore

__all__ = [
    "DeadlockWitness",
    "WitnessStore",
    "mine_witness",
    "witness_scope",
]
