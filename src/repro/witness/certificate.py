"""Deadlock witness certificates: what a deadlocked run proves.

A sweep corner that deadlocks runs to quiescence before the detector
(:mod:`repro.sim.deadlock`) explains it — and then the next sweep pays
the same cost for a corner the last one already proved deadlocked. This
module mines what the detector reports into a *certificate*: the
normalized wait-for cycle (the blocked subprogram slice — cells and
messages on the cycle, name-canonicalized), the policy, and the capacity
under which it deadlocked, plus the exact row payload (time, events,
words) the run produced.

A certificate licenses skipping future jobs on two levels:

* **Trace replay (row-exact).** For the static policy, queue assignment
  is decided per message at link setup from the competing-message set
  alone — capacity never enters — so capacity influences the run *only*
  through the push-blocks-when-full check. A witnessed run whose queues
  never filled (``peak_occupancy < capacity``) therefore executed the
  capacity-unconstrained trace, and every capacity ``>= peak_occupancy``
  replays it event for event: same deadlock, same time, same event
  count, same words. :meth:`DeadlockWitness.covers_capacity` is that
  band — the witnessed capacity itself, plus the open ray above the
  peak when the queues never filled. Rows synthesized inside the band
  are byte-identical to simulated ones (differential-tested across
  backends).
* **Monotone dominance (outcome-only).** Static-policy completion is
  monotone in capacity (hypothesis-pinned in
  ``tests/test_properties.py``), so any capacity ``<=`` the witnessed
  one also deadlocks. That is *outcome* knowledge, not trace knowledge
  — time/events may differ — so it never synthesizes rows; the frontier
  planner (:mod:`repro.sweep.planner`) uses it to seed bisection
  bounds.

FCFS is exempt from both by construction — the pinned PR 2
counterexample shows extra FCFS buffering can *introduce* deadlock, so
no capacity generalization is sound there; :func:`mine_witness` refuses
to mine any policy outside ``MONOTONE_POLICIES``. This is the SokoDLex
pattern (normalized deadlock certificates with subsumption lookup)
under the "weak deadlock sets" framing: the per-queue buffer budget
defines the deadlocking region a certificate covers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.arch.config import ArrayConfig
from repro.sweep.jobs import SimJob, job_fingerprint

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.sim.result import SimulationResult

#: Bump when the certificate payload changes meaning; old stores then
#: read as empty instead of licensing skips they no longer prove.
SCOPE_VERSION = 1

#: ``"<agent> W(<msg>): ..."`` / ``"<agent> R(<msg>): ..."`` — the
#: message name inside a blocked-agent description (see
#: ``repro.sim.agents._Agent.wait_reason``).
_OP_MESSAGE = re.compile(r"[WR]\((\w+)\)")


def witness_scope(job: SimJob) -> str:
    """The capacity-neutral identity of a job: everything but capacity.

    Two jobs share a scope exactly when they differ in nothing but
    ``queue_capacity`` — same program content, policy, queue count,
    registers, limits. A witness generalizes only within its scope
    (capacity is the one axis the monotonicity/trace arguments cover),
    so this string is the store's index key.
    """
    config = job.config or ArrayConfig()
    neutral = dataclasses.replace(job, config=config.with_(queue_capacity=0))
    return f"ws{SCOPE_VERSION}|{job_fingerprint(neutral)}"


@dataclass(frozen=True)
class DeadlockWitness:
    """One deadlocked run, normalized into a reusable certificate.

    ``cycle`` is the detector's wait-for cycle, canonicalized (trailing
    repeat dropped, rotated to start at the lexicographically smallest
    agent) so the same circular wait mined from different runs compares
    equal. ``capacity`` is the witnessed uniform queue capacity,
    ``peak_occupancy`` the maximum occupancy any queue reached before
    quiescence — together they define the capacity band
    :meth:`covers_capacity` replays row-exactly. ``time``/``events``/
    ``words`` are the witnessed run's row payload, emitted verbatim for
    covered jobs.
    """

    scope: str
    program_fp: str
    policy: str
    queues: int
    capacity: int
    peak_occupancy: int
    cycle: tuple[str, ...]
    cells: tuple[str, ...]
    messages: tuple[str, ...]
    time: int
    events: int
    words: int

    @property
    def witness_id(self) -> str:
        """Deterministic content id (stable across processes and runs)."""
        h = hashlib.blake2b(digest_size=8)
        h.update(
            repr(
                (
                    self.scope,
                    self.capacity,
                    self.peak_occupancy,
                    self.cycle,
                    self.time,
                    self.events,
                    self.words,
                )
            ).encode()
        )
        return h.hexdigest()

    @property
    def open_ray(self) -> bool:
        """Whether the witnessed trace is capacity-unconstrained.

        True when no queue ever filled (``peak_occupancy < capacity``):
        the run would replay identically at every capacity down to the
        peak, so the certificate covers the ray ``[peak_occupancy, inf)``
        in addition to the witnessed capacity itself.
        """
        return self.peak_occupancy < self.capacity

    def covers_capacity(self, capacity: int) -> bool:
        """Whether a job at ``capacity`` replays this witnessed trace.

        The witnessed capacity always qualifies (exact replay). With an
        :attr:`open_ray`, so does every capacity ``>= peak_occupancy``:
        the queues never filled at the witnessed capacity, so no push
        ever blocked on space and none would at any capacity above the
        peak either — the trace, and therefore the row, is identical.
        """
        if capacity == self.capacity:
            return True
        return self.open_ray and capacity >= self.peak_occupancy

    def subsumes(self, other: "DeadlockWitness") -> bool:
        """Whether this certificate makes ``other`` redundant.

        True when every job ``other`` covers is covered here too *and*
        this witness's dominance bound (its capacity, used by the
        planner's bisection seeding) is at least as strong.
        """
        if self.scope != other.scope:
            return False
        if not self.covers_capacity(other.capacity):
            return False
        if other.open_ray and not (
            self.open_ray and self.peak_occupancy <= other.peak_occupancy
        ):
            return False
        return self.capacity >= other.capacity

    def as_dict(self) -> dict:
        """JSON-ready payload (the store's on-disk form)."""
        return {
            "id": self.witness_id,
            "scope": self.scope,
            "program_fp": self.program_fp,
            "policy": self.policy,
            "queues": self.queues,
            "capacity": self.capacity,
            "peak_occupancy": self.peak_occupancy,
            "cycle": list(self.cycle),
            "cells": list(self.cells),
            "messages": list(self.messages),
            "time": self.time,
            "events": self.events,
            "words": self.words,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DeadlockWitness":
        return cls(
            scope=payload["scope"],
            program_fp=payload["program_fp"],
            policy=payload["policy"],
            queues=payload["queues"],
            capacity=payload["capacity"],
            peak_occupancy=payload["peak_occupancy"],
            cycle=tuple(payload["cycle"]),
            cells=tuple(payload["cells"]),
            messages=tuple(payload["messages"]),
            time=payload["time"],
            events=payload["events"],
            words=payload["words"],
        )


def _canonical_cycle(cycle: list[str]) -> tuple[str, ...]:
    """Drop the trailing repeat, rotate to the smallest agent name."""
    nodes = list(cycle)
    if len(nodes) > 1 and nodes[0] == nodes[-1]:
        nodes = nodes[:-1]
    pivot = nodes.index(min(nodes))
    return tuple(nodes[pivot:] + nodes[:pivot])


def _cycle_members(cycle: tuple[str, ...], blocked: list[str]):
    """Cells, and messages, named by the cycle's agents.

    Cell and forwarder agents encode their identity in their names
    (``cell:<name>``, ``fwd:<message>:<hop>``); the message each blocked
    cell is stuck on comes from its blocked-agent description.
    """
    members = set(cycle)
    cells: set[str] = set()
    messages: set[str] = set()
    for name in cycle:
        kind, _, rest = name.partition(":")
        if kind == "cell":
            cells.add(rest)
        elif kind == "fwd":
            messages.add(rest.rsplit(":", 1)[0])
    for line in blocked:
        agent = line.split(" ", 1)[0]
        if agent not in members:
            continue
        match = _OP_MESSAGE.search(line)
        if match is not None:
            messages.add(match.group(1))
    return tuple(sorted(cells)), tuple(sorted(messages))


def mine_witness(
    job: SimJob, result: "SimulationResult"
) -> DeadlockWitness | None:
    """Normalize one deadlocked run into a certificate, or ``None``.

    Mining refuses anything the capacity arguments do not cover:

    * non-deadlock outcomes, and deadlocks the detector could not
      explain with a wait-for cycle (a chain is not a certificate);
    * policies outside ``MONOTONE_POLICIES`` — FCFS capacity behavior
      is non-monotone (the pinned counterexample), so no capacity
      generalization is sound and nothing is worth storing;
    * configurations where capacity is not the uniform scalar the band
      reasons about: per-link queue overrides, or the queue-extension
      escape hatch (a "full" queue that spills never blocks a push, so
      the peak-occupancy argument does not apply).
    """
    from repro.sweep.planner import MONOTONE_POLICIES

    if not getattr(result, "deadlocked", False):
        return None
    if result.completed or result.timed_out:
        return None
    if result.wait_cycle is None:
        return None
    if job.policy not in MONOTONE_POLICIES:
        return None
    config = job.config or ArrayConfig()
    if config.allow_extension or config.link_queue_overrides:
        return None
    from repro.perf.analysis_cache import program_fingerprint

    cycle = _canonical_cycle(result.wait_cycle)
    cells, messages = _cycle_members(cycle, result.blocked)
    peak = max(
        (stats.peak_occupancy for stats in result.queue_stats.values()),
        default=0,
    )
    return DeadlockWitness(
        scope=witness_scope(job),
        program_fp=program_fingerprint(job.program),
        policy=job.policy,
        queues=config.queues_per_link,
        capacity=config.queue_capacity,
        peak_occupancy=peak,
        cycle=cycle,
        cells=cells,
        messages=messages,
        time=result.time,
        events=result.events,
        words=result.words_transferred,
    )
