"""The witness store: persisted certificates with subsumption lookup.

A :class:`WitnessStore` holds :class:`~repro.witness.certificate.
DeadlockWitness` certificates indexed by *scope* (the capacity-neutral
job identity — program fingerprint, policy, queue count, registers,
limits) and answers two queries:

* :meth:`find` — the certificate, if any, whose capacity band covers a
  job row-exactly (see :meth:`DeadlockWitness.covers_capacity`); the
  sweep session emits the known deadlock row without simulating.
* :meth:`monotone_bound` — the highest capacity any certificate in a
  scope witnessed; for monotone policies every capacity at or below it
  also deadlocks (outcome-only), which seeds the frontier planner's
  bisection bounds.

Certificates are added through :meth:`add`, which applies subsumption
in both directions: a new certificate already covered by a stored one
is dropped, and stored certificates the new one makes redundant are
pruned — the store stays minimal without a separate compaction pass
(:meth:`prune` exists for stores written by older code or merged by
hand).

Persistence is a single JSON file — human-auditable (``repro witness
ls`` / ``show`` render it), published atomically (temp file +
``os.replace``), versioned, and deterministic (sorted on save, content
ids). A corrupt or foreign file reads as *absent* — an empty store is
always safe, it merely prunes nothing — but the rejection is counted in
:meth:`stats`, never silent.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Iterator

from repro.witness.certificate import DeadlockWitness, witness_scope

#: Bump when the on-disk layout changes; old files then read as absent
#: (and are counted as rejected) instead of deserializing into garbage.
FORMAT_VERSION = 1

#: What a malformed store file can raise while being decoded: I/O
#: failures, JSON syntax, and payload-shape violations (missing keys,
#: wrong types). Anything else — ``MemoryError``, ``KeyboardInterrupt``
#: — is a bug or an interrupt, not corruption, and must propagate.
_CORRUPT_CLASSES = (ValueError, KeyError, TypeError)


class WitnessStore:
    """Deadlock certificates indexed by scope, with subsumption.

    ``path`` is optional: a pathless store is an in-memory cache for a
    single session (:meth:`save` is then a no-op). With a path, the
    constructor loads whatever the file holds; call :meth:`save` to
    publish additions.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._by_scope: dict[str, list[DeadlockWitness]] = {}
        #: corrupt/foreign store files rejected at load (read as empty)
        self.loads_rejected = 0
        #: certificates accepted by :meth:`add`
        self.added = 0
        #: new certificates dropped because a stored one subsumes them
        self.add_subsumed = 0
        #: stored certificates pruned because a new one subsumes them
        self.pruned = 0
        #: :meth:`find` calls answered with a certificate
        self.hits = 0
        if self.path is not None:
            self._load()

    # -- persistence ------------------------------------------------------

    def _load(self) -> None:
        try:
            blob = open(self.path, "rb").read()
        except FileNotFoundError:
            return  # absent is the normal cold-start case, not an error
        except OSError:
            self.loads_rejected += 1
            return
        try:
            payload = json.loads(blob)
            if payload["version"] != FORMAT_VERSION:
                raise ValueError(f"unknown version {payload['version']!r}")
            witnesses = [
                DeadlockWitness.from_dict(entry)
                for entry in payload["witnesses"]
            ]
        except _CORRUPT_CLASSES:
            # Corruption reads as an empty store — always safe (nothing
            # gets pruned that a certificate does not prove) — but the
            # rejection is observable, never silent.
            self.loads_rejected += 1
            return
        for witness in witnesses:
            self._by_scope.setdefault(witness.scope, []).append(witness)

    def save(self) -> None:
        """Atomically publish the store (no-op for pathless stores)."""
        if self.path is None:
            return
        payload = {
            "version": FORMAT_VERSION,
            "witnesses": [w.as_dict() for w in self.witnesses()],
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".witness-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- content ----------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(group) for group in self._by_scope.values())

    def witnesses(self) -> Iterator[DeadlockWitness]:
        """Every certificate, in deterministic (scope, capacity, id) order."""
        for scope in sorted(self._by_scope):
            yield from sorted(
                self._by_scope[scope],
                key=lambda w: (w.capacity, w.peak_occupancy, w.witness_id),
            )

    def get(self, witness_id: str) -> DeadlockWitness | None:
        """Look one certificate up by (a unique prefix of) its id."""
        matches = [
            w for w in self.witnesses()
            if w.witness_id.startswith(witness_id)
        ]
        return matches[0] if len(matches) == 1 else None

    def add(self, witness: DeadlockWitness) -> bool:
        """Insert a certificate; returns False when already subsumed.

        Subsumption runs both ways: a certificate a stored one covers
        is dropped, and stored certificates the new one covers are
        pruned, so each scope keeps only its frontier of knowledge.
        """
        group = self._by_scope.setdefault(witness.scope, [])
        for stored in group:
            if stored.subsumes(witness):
                self.add_subsumed += 1
                return False
        kept = [w for w in group if not witness.subsumes(w)]
        self.pruned += len(group) - len(kept)
        kept.append(witness)
        self._by_scope[witness.scope] = kept
        self.added += 1
        return True

    def prune(self) -> int:
        """Drop every stored certificate another one subsumes.

        :meth:`add` keeps the store minimal as it grows, so this is for
        stores assembled some other way (hand-merged files, older
        formats). Returns the number removed.
        """
        removed = 0
        for scope, group in list(self._by_scope.items()):
            kept = [
                w for w in group
                if not any(o is not w and o.subsumes(w) for o in group)
            ]
            removed += len(group) - len(kept)
            if kept:
                self._by_scope[scope] = kept
            else:
                del self._by_scope[scope]
        return removed

    # -- queries ----------------------------------------------------------

    def find(self, job) -> DeadlockWitness | None:
        """The certificate covering ``job`` row-exactly, or ``None``.

        Non-monotone policies (FCFS — the pinned counterexample) and
        configurations outside the band argument (queue extension,
        per-link overrides) never match, by construction: the check
        runs before any certificate is consulted, so no store content
        can ever prune them.
        """
        from repro.arch.config import ArrayConfig
        from repro.sweep.planner import MONOTONE_POLICIES

        if job.policy not in MONOTONE_POLICIES:
            return None
        config = job.config or ArrayConfig()
        if config.allow_extension or config.link_queue_overrides:
            return None
        group = self._by_scope.get(witness_scope(job))
        if not group:
            return None
        for witness in group:
            if witness.covers_capacity(config.queue_capacity):
                self.hits += 1
                return witness
        return None

    def monotone_bound(self, scope: str) -> int | None:
        """The highest capacity witnessed deadlocked in ``scope``.

        For monotone policies, every capacity at or below this bound
        also deadlocks — *outcome* knowledge only (rows may differ), so
        it seeds planner bisection bounds but never synthesizes rows.
        """
        group = self._by_scope.get(scope)
        if not group:
            return None
        return max(w.capacity for w in group)

    def stats(self) -> dict:
        """Observability counters (load rejections are never silent)."""
        return {
            "witnesses": len(self),
            "scopes": len(self._by_scope),
            "added": self.added,
            "add_subsumed": self.add_subsumed,
            "pruned": self.pruned,
            "hits": self.hits,
            "loads_rejected": self.loads_rejected,
        }
