"""Single-host shared-memory tier between the in-memory and disk caches.

Pool workers start with a cold in-memory
:class:`~repro.perf.analysis_cache.AnalysisCache`; the disk tier
(:mod:`repro.perf.disk_cache`) spares them the recompute but still costs
a file read plus two ``pickle.loads`` per miss — and without a disk tier
they recompute everything. On one host that is silly: the parent already
holds every warm analysis in memory. This module publishes them into a
read-mostly POSIX shared-memory arena that every worker attaches once:

* **layout** — one segment: a fixed header, a table of fixed 64-byte
  index slots (content digest, blob offset/length, BLAKE2 checksum,
  ready byte), then a bump-allocated blob heap of pickled artifact
  dicts. Digests reuse the disk tier's content key
  (:func:`repro.perf.disk_cache._key_digest`), so the three tiers agree
  on what "the same analysis" means.
* **single writer, lock-free readers** — only the creating process
  (checked by pid) publishes, appending blob-then-slot and bumping the
  entry count last, so a slot is complete before it is visible.
  Republishing a key appends a superseding slot; readers scan newest
  slot wins. Readers verify the blob checksum *before* unpickling, so a
  torn read degrades to a miss, never to corrupt artifacts.
* **per-process memo** — each attached process memoizes deserialized
  artifact dicts by digest+checksum, so the steady-state cost of a warm
  analysis in a worker is one dict hit: no filesystem I/O, no
  deserialization.
* **best-effort everywhere** — a full arena drops the publish, a failed
  attach degrades to "no shm tier", and bug-class exceptions
  (:exc:`MemoryError`) propagate exactly as in the disk tier.

The sweep session (:class:`~repro.sweep.plan.SweepSession`) creates the
arena lazily before its first multiprocess run, publishes the global
cache's warm entries, and ships the segment name to workers through
:class:`~repro.sweep.backends.WorkerContext`; lookups then resolve
memory -> shm -> disk (see :meth:`~repro.perf.analysis_cache.
AnalysisCache.lookup`). Export ``REPRO_ANALYSIS_SHM_CACHE=0`` to disable
the tier; ``REPRO_ANALYSIS_SHM_CACHE_BYTES`` resizes the blob heap.

Like the disk tier, blobs are Python pickles — the segment is created
mode-0600 by the owning user and named unguessably, but the usual
pickle-trust caveat applies.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import struct
import threading
from multiprocessing import shared_memory

from repro.perf.analysis_cache import AnalysisKey
from repro.perf.disk_cache import _key_digest

#: Bump when the header/slot/blob layout changes; a version mismatch on
#: attach reads as "no shm tier".
FORMAT_VERSION = 1

#: Environment variable disabling the tier ("0"/"off"/"no"/"false").
ENV_VAR = "REPRO_ANALYSIS_SHM_CACHE"

#: Environment variable resizing the blob heap, in bytes.
HEAP_BYTES_ENV_VAR = "REPRO_ANALYSIS_SHM_CACHE_BYTES"

DEFAULT_MAX_ENTRIES = 1024
DEFAULT_HEAP_BYTES = 16 * 1024 * 1024

_MAGIC = b"REPROSHM"
# magic, version, max_entries, entry_count, heap_used, heap_size.
_HEADER = struct.Struct("<8sIQQQQ")
_HEADER_SIZE = 64  # padded for alignment headroom
_COUNT_OFF = 20
_HEAP_USED_OFF = 28
# digest, heap offset, blob length, blob checksum, ready byte.
_SLOT = struct.Struct("<16sQQ16sB")
_SLOT_SIZE = 64

#: What ``pickle.loads`` raises on truncated/foreign/stale bytes — the
#: disk tier's load-narrowing classes, minus filesystem-only ones.
_LOAD_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    ValueError,
    AttributeError,
    ImportError,
    IndexError,
)

#: What ``pickle.dumps`` raises on unpicklable artifact content — the
#: disk tier's store-narrowing classes. ``MemoryError`` propagates.
_STORE_ERRORS = (
    pickle.PicklingError,
    TypeError,
    AttributeError,
    ValueError,
    RecursionError,
)


def _blob_checksum(blob: bytes) -> bytes:
    return hashlib.blake2b(blob, digest_size=16).digest()


class ShmAnalysisCache:
    """One shared-memory segment of published analysis artifacts.

    Construct through :meth:`create` (the owning parent) or
    :meth:`attach` (a worker); the segment name travels between them via
    :class:`~repro.sweep.backends.WorkerContext.shm_cache`.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        max_entries: int,
        heap_size: int,
        owner_pid: int | None,
    ) -> None:
        self._shm = shm
        self.max_entries = max_entries
        self.heap_size = heap_size
        self._owner_pid = owner_pid
        self._slots_off = _HEADER_SIZE
        self._heap_off = _HEADER_SIZE + max_entries * _SLOT_SIZE
        # Single-writer discipline within the owning process too.
        self._write_lock = threading.Lock()
        #: Owner-side digest -> checksum of the latest published slot,
        #: so re-publishing unchanged artifacts is a no-op instead of a
        #: duplicate slot.
        self._published: dict[bytes, bytes] = {}
        #: Reader-side incremental index: digest -> (offset, length,
        #: checksum) of the newest ready slot scanned so far.
        self._index: dict[bytes, tuple[int, int, bytes]] = {}
        self._scanned = 0
        #: Reader-side memo: digest -> (checksum, deserialized dict).
        self._memo: dict[bytes, tuple[bytes, dict]] = {}
        self.hits = 0
        self.memo_hits = 0  # subset of hits served without unpickling
        self.misses = 0
        self.rejected = 0  # checksum failures / torn slots (subset of misses)
        self.load_errors = 0  # unpicklable blobs (subset of misses)
        self.publishes = 0
        self.store_errors = 0  # unpicklable artifacts (owner side)
        self.full_drops = 0  # publishes dropped by a full table/heap

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def create(
        cls,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        heap_bytes: int = DEFAULT_HEAP_BYTES,
    ) -> "ShmAnalysisCache":
        """Allocate a fresh arena owned (and later unlinked) by this pid."""
        if max_entries < 1 or heap_bytes < 1:
            raise ValueError("shm cache needs at least one slot and one byte")
        size = _HEADER_SIZE + max_entries * _SLOT_SIZE + heap_bytes
        shm = shared_memory.SharedMemory(create=True, size=size)
        _HEADER.pack_into(
            shm.buf, 0, _MAGIC, FORMAT_VERSION, max_entries, 0, 0, heap_bytes
        )
        return cls(shm, max_entries, heap_bytes, os.getpid())

    @classmethod
    def attach(cls, name: str) -> "ShmAnalysisCache":
        """Attach read-only to an existing arena by segment name.

        Raises on a missing segment or an unrecognized header; callers
        that want best-effort semantics go through
        :func:`attach_shm_cache` instead.
        """
        shm = shared_memory.SharedMemory(name=name)
        try:
            magic, version, max_entries, _count, _used, heap_size = (
                _HEADER.unpack_from(shm.buf, 0)
            )
            if magic != _MAGIC or version != FORMAT_VERSION:
                raise ValueError(
                    f"shm cache segment {name!r} has an unrecognized header"
                )
            expected = _HEADER_SIZE + max_entries * _SLOT_SIZE + heap_size
            if shm.size < expected:
                raise ValueError(
                    f"shm cache segment {name!r} is truncated "
                    f"({shm.size} < {expected} bytes)"
                )
        except Exception:
            shm.close()
            raise
        return cls(shm, max_entries, heap_size, None)

    # -- owner side -------------------------------------------------------

    def publish(self, key: AnalysisKey, artifacts: dict) -> bool:
        """Append ``artifacts`` under ``key``; False when not published.

        Only the creating process publishes (a forked worker inheriting
        this handle is refused by pid, keeping the single-writer
        invariant without any cross-process locking). Unpicklable
        artifacts and a full table/heap degrade to "not in the shm
        tier", never to an error; re-publishing byte-identical artifacts
        is a cheap no-op.
        """
        if self._owner_pid != os.getpid():
            return False
        try:
            blob = pickle.dumps(artifacts, protocol=pickle.HIGHEST_PROTOCOL)
        except _STORE_ERRORS:
            self.store_errors += 1
            return False
        digest = bytes.fromhex(_key_digest(key))
        checksum = _blob_checksum(blob)
        with self._write_lock:
            if self._published.get(digest) == checksum:
                return True
            buf = self._shm.buf
            count = struct.unpack_from("<Q", buf, _COUNT_OFF)[0]
            heap_used = struct.unpack_from("<Q", buf, _HEAP_USED_OFF)[0]
            if count >= self.max_entries or (
                heap_used + len(blob) > self.heap_size
            ):
                self.full_drops += 1
                return False
            start = self._heap_off + heap_used
            buf[start : start + len(blob)] = blob
            _SLOT.pack_into(
                buf,
                self._slots_off + count * _SLOT_SIZE,
                digest,
                heap_used,
                len(blob),
                checksum,
                1,
            )
            struct.pack_into("<Q", buf, _HEAP_USED_OFF, heap_used + len(blob))
            # Visibility barrier: readers gate on the entry count, so
            # the slot and blob are complete before this bump lands.
            struct.pack_into("<Q", buf, _COUNT_OFF, count + 1)
            self._published[digest] = checksum
            self.publishes += 1
        return True

    # -- reader side ------------------------------------------------------

    def _refresh_index(self) -> None:
        """Fold newly published slots into the per-process index.

        Each slot is decoded once per process; later slots overwrite
        earlier ones for the same digest (newest wins).
        """
        buf = self._shm.buf
        count = struct.unpack_from("<Q", buf, _COUNT_OFF)[0]
        count = min(count, self.max_entries)
        while self._scanned < count:
            digest, offset, length, checksum, ready = _SLOT.unpack_from(
                buf, self._slots_off + self._scanned * _SLOT_SIZE
            )
            if ready and offset + length <= self.heap_size:
                self._index[digest] = (offset, length, checksum)
            self._scanned += 1

    def load(self, key: AnalysisKey) -> dict | None:
        """The published artifact dict for ``key``, or ``None``.

        Checksum-verified before unpickling; repeated loads of the same
        published blob are served from the per-process memo with zero
        deserialization.
        """
        digest = bytes.fromhex(_key_digest(key))
        self._refresh_index()
        entry = self._index.get(digest)
        if entry is None:
            self.misses += 1
            return None
        offset, length, checksum = entry
        memo = self._memo.get(digest)
        if memo is not None and memo[0] == checksum:
            self.hits += 1
            self.memo_hits += 1
            return memo[1]
        buf = self._shm.buf
        start = self._heap_off + offset
        blob = bytes(buf[start : start + length])
        if _blob_checksum(blob) != checksum:
            # A torn read (the owner died mid-publish): a miss, never
            # corrupt artifacts.
            self.rejected += 1
            self.misses += 1
            return None
        try:
            artifacts = pickle.loads(blob)
        except _LOAD_ERRORS:
            self.load_errors += 1
            self.misses += 1
            return None
        if not isinstance(artifacts, dict):
            self.misses += 1
            return None
        self._memo[digest] = (checksum, artifacts)
        self.hits += 1
        return artifacts

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Detach this process's mapping (the segment itself survives).

        Same resource-tracker discipline as the sweep arena
        (:meth:`repro.sweep.arena.SummaryArena.close`): attachments only
        ever ``close()``; the owning parent alone ``unlink()``s.
        """
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment. Owner only; refusal is silent."""
        if self._owner_pid == os.getpid():
            self._shm.unlink()

    def stats(self) -> dict[str, int]:
        """Observability counters of this process's view of the arena."""
        buf = self._shm.buf
        return {
            "entries": struct.unpack_from("<Q", buf, _COUNT_OFF)[0],
            "heap_used": struct.unpack_from("<Q", buf, _HEAP_USED_OFF)[0],
            "hits": self.hits,
            "memo_hits": self.memo_hits,
            "misses": self.misses,
            "rejected": self.rejected,
            "load_errors": self.load_errors,
            "publishes": self.publishes,
            "store_errors": self.store_errors,
            "full_drops": self.full_drops,
        }


# -- process-wide state ----------------------------------------------------

_lock = threading.Lock()
_owner: ShmAnalysisCache | None = None
_attached: ShmAnalysisCache | None = None
_atexit_registered = False


def _env_disabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() in (
        "0",
        "off",
        "no",
        "false",
    )


def _env_heap_bytes() -> int:
    raw = os.environ.get(HEAP_BYTES_ENV_VAR, "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_HEAP_BYTES
    return value if value > 0 else DEFAULT_HEAP_BYTES


def _cleanup_owner() -> None:  # pragma: no cover - interpreter teardown
    global _owner
    with _lock:
        cache, _owner = _owner, None
        if cache is not None and cache._owner_pid == os.getpid():
            try:
                cache.close()
                cache.unlink()
            except OSError:
                pass


def ensure_shm_cache() -> str | None:
    """Create (once per process) the owned arena; its name, or ``None``.

    ``None`` means "no shm tier": disabled by :data:`ENV_VAR`, or the
    host cannot allocate shared memory — callers degrade silently. A
    forked child that starts its own sweep gets its own arena rather
    than writing into its parent's.
    """
    global _owner, _atexit_registered
    with _lock:
        if _env_disabled():
            return None
        if _owner is not None and _owner._owner_pid == os.getpid():
            return _owner.name
        try:
            cache = ShmAnalysisCache.create(heap_bytes=_env_heap_bytes())
        except (OSError, ValueError):
            return None
        _owner = cache
        if not _atexit_registered:
            _atexit_registered = True
            atexit.register(_cleanup_owner)
        return cache.name


def attach_shm_cache(name: str) -> ShmAnalysisCache | None:
    """Attach this process to the arena named ``name``, best-effort.

    Idempotent per name; a forked worker that inherited the owner's
    handle reuses it (the pid guard already makes it read-only there).
    Any attach failure — the parent exited and unlinked, a torn or
    foreign header — returns ``None`` and the process simply runs
    without the tier.
    """
    global _attached
    with _lock:
        if _owner is not None and _owner.name == name:
            return _owner
        if _attached is not None and _attached.name == name:
            return _attached
        if _attached is not None:
            try:
                _attached.close()
            except OSError:  # pragma: no cover - already-closed edge
                pass
            _attached = None
        try:
            _attached = ShmAnalysisCache.attach(name)
        except (OSError, ValueError):
            return None
        return _attached


def active_shm_cache() -> ShmAnalysisCache | None:
    """The arena this process should read from, or ``None``."""
    with _lock:
        if _attached is not None:
            return _attached
        return _owner


def reset_shm_cache_state() -> None:
    """Tear down this process's arena handles (for tests and benches)."""
    global _owner, _attached
    with _lock:
        if _attached is not None:
            try:
                _attached.close()
            except OSError:  # pragma: no cover - already-closed edge
                pass
            _attached = None
        if _owner is not None:
            if _owner._owner_pid == os.getpid():
                try:
                    _owner.close()
                    _owner.unlink()
                except OSError:  # pragma: no cover - already-gone edge
                    pass
            _owner = None


def shm_cache_stats() -> dict[str, int] | None:
    """Counters of the active arena, or ``None`` without one."""
    cache = active_shm_cache()
    return None if cache is None else cache.stats()
