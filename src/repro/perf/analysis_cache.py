"""Content-keyed cache of the simulator's static analyses.

Building a :class:`~repro.sim.runtime.Simulator` performs a batch of
static work — routing every message, computing competing-message sets,
deriving lookahead capacities, and running the constraint labeling. All
of it depends only on *program content*, the topology/router, and two
queue-provisioning bits of the config — never on run-time state. Sweeps,
policy ablations and Theorem-1 ensembles simulate the same program many
times, so this module memoizes the analyses under a content key:

    (program fingerprint, topology fingerprint, router class,
     queue_capacity, allow_extension)

The crossing *backend* (interned vs columnar, see
:func:`repro.core.crossing.resolve_backend`) is deliberately **not**
part of the key: the engines are pinned bit-identical by the
equivalence harness, so a labeling computed under one backend is the
labeling under the other — switching backends mid-process keeps every
cache entry valid and shared.

Fingerprints are BLAKE2 digests of the structural content (cells,
messages, per-cell operation sequences), so two structurally identical
programs share cache entries even if built independently. Entries are
computed lazily — a FCFS run never pays for a labeling — and shared
artifacts are immutable (tuples, frozen dataclasses) or treated as
read-only by every consumer.

The cache is bounded LRU and process-global; :func:`clear_analysis_cache`
resets it (useful in tests and long-lived services after memory
pressure).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.arch.config import ArrayConfig
from repro.arch.links import Link, Route
from repro.arch.routing import LinearRouter, RingRouter, Router, XYRouter
from repro.arch.topology import (
    ExplicitLinear,
    LinearArray,
    Mesh2D,
    RingArray,
    Topology,
    Torus2D,
)
from repro.core.crossing import LookaheadConfig, route_capacities
from repro.core.labeling import Labeling, constraint_labeling
from repro.core.program import ArrayProgram
from repro.core.requirements import competing_messages

_FINGERPRINT_ATTR = "_perf_fingerprint"


def program_fingerprint(program: ArrayProgram) -> str:
    """Stable digest of a program's structural content.

    Covers cells, message declarations, and every cell's operation
    sequence (kind, message, cycles, register, operands). Compute
    callables are excluded — they never influence routing, competition or
    labeling. The digest is memoized on the program instance (programs
    are immutable after construction).

    The digest hashes *names*, never interned ids: two structurally
    identical programs must share disk-cache entries even across
    processes and releases, so the fingerprint cannot depend on how any
    particular build assigned ids. (Intern order is itself content-
    derived — sorted names — but keeping ids out of the hash makes the
    independence unconditional.) The intern table is used only as the
    pre-sorted message iteration order.
    """
    cached = getattr(program, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(program.cells).encode())
    for name in program.intern.message_names:
        msg = program.messages[name]
        h.update(f"|m:{msg.name},{msg.sender},{msg.receiver},{msg.length}".encode())
    for cell in program.cells:
        h.update(f"|c:{cell}".encode())
        for op in program.cell_programs[cell].ops:
            h.update(
                f";{op.kind.name},{op.message},{op.cycles},"
                f"{op.register},{op.operands}".encode()
            )
    digest = h.hexdigest()
    try:
        setattr(program, _FINGERPRINT_ATTR, digest)
    except AttributeError:  # pragma: no cover - slotted subclass
        pass
    return digest


def topology_fingerprint(topology: Topology) -> str | None:
    """Identify a topology by type and cell layout, or ``None``.

    Only the built-in topology classes are known to be fully determined
    by (type, cells, dims). A custom subclass may wire the same cells
    differently, so it is uncacheable (returns ``None``) unless it opts
    in by exposing an ``analysis_fingerprint`` attribute that captures
    every parameter its wiring depends on.
    """
    cls = type(topology)
    token = getattr(topology, "analysis_fingerprint", None)
    parts = [f"{cls.__module__}.{cls.__qualname__}", repr(topology.cells)]
    if token is not None:
        parts.append(str(token))
    elif cls not in (ExplicitLinear, LinearArray, Mesh2D, RingArray, Torus2D):
        return None
    if isinstance(topology, Mesh2D):
        parts.append(f"{topology.rows}x{topology.cols}")
    return "|".join(parts)


def router_fingerprint(router: Router) -> str | None:
    """Identify a router by its class, or ``None`` for custom routers.

    The provided routers are pure functions of their topology, so the
    class path suffices. A custom :class:`Router` subclass may be
    parameterized (same class, different routes), so it is uncacheable
    (returns ``None``) unless it exposes an ``analysis_fingerprint``
    attribute covering every parameter its routes depend on.
    """
    cls = type(router)
    path = f"{cls.__module__}.{cls.__qualname__}"
    token = getattr(router, "analysis_fingerprint", None)
    if token is not None:
        return f"{path}|{token}"
    if cls in (LinearRouter, RingRouter, XYRouter):
        return path
    return None


@dataclass(frozen=True, slots=True)
class AnalysisKey:
    """The full content key one cache entry lives under."""

    program: str
    topology: str
    router: str
    queue_capacity: int
    allow_extension: bool


class AnalysisEntry:
    """Lazily-computed static analyses for one content key.

    All artifacts are effectively immutable and shared between every
    simulator that hits this entry:

    * ``routes`` — message name -> :class:`Route` (tuple of links);
    * ``competing`` — link -> tuple of competing message names;
    * ``capacities`` — the derived :class:`LookaheadConfig` (or ``None``
      for unbuffered, no-extension configs);
    * ``labeling`` — the constraint labeling (frozen dataclass);
    * ``ordered_groups`` — link -> per-label groups, precomputed for the
      ordered policy's setup.
    """

    __slots__ = (
        "key",
        "_program",
        "_router",
        "_queue_capacity",
        "_allow_extension",
        "_lock",
        "_routes",
        "_competing",
        "_capacities",
        "_has_capacities",
        "_labeling",
        "_ordered_groups",
        "_disk_synced",
        "_shm_synced",
    )

    def __init__(
        self,
        program: ArrayProgram,
        router: Router,
        queue_capacity: int,
        allow_extension: bool,
        key: "AnalysisKey | None" = None,
    ) -> None:
        self.key = key
        self._program = program
        self._router = router
        self._queue_capacity = queue_capacity
        self._allow_extension = allow_extension
        # Reentrant: the labeling computation reads `capacities` under the
        # same lock.
        self._lock = threading.RLock()
        self._routes: dict[str, Route] | None = None
        self._competing: dict[Link, tuple[str, ...]] | None = None
        self._capacities: LookaheadConfig | None = None
        self._has_capacities = False
        self._labeling: Labeling | None = None
        self._ordered_groups: dict[Link, tuple[tuple[str, ...], ...]] | None = None
        # True while the disk tier (if any) already holds everything this
        # entry has computed; any fresh computation clears it. The shm
        # flag mirrors it for the shared-memory tier
        # (:mod:`repro.perf.shm_cache`).
        self._disk_synced = False
        self._shm_synced = False

    @property
    def routes(self) -> dict[str, Route]:
        """Route of every message (computed once)."""
        if self._routes is None:
            with self._lock:
                if self._routes is None:
                    program, router = self._program, self._router
                    self._disk_synced = False
                    self._shm_synced = False
                    self._routes = {
                        msg.name: router.route(msg.sender, msg.receiver)
                        for msg in program.messages.values()
                    }
        return self._routes

    @property
    def competing(self) -> dict[Link, tuple[str, ...]]:
        """Competing-message sets per directed link (computed once)."""
        if self._competing is None:
            with self._lock:
                if self._competing is None:
                    table = competing_messages(self._program, self._router)
                    self._disk_synced = False
                    self._shm_synced = False
                    self._competing = {
                        link: tuple(names) for link, names in table.items()
                    }
        return self._competing

    @property
    def capacities(self) -> LookaheadConfig | None:
        """Lookahead bounds for buffered/extended configs, else ``None``."""
        if not self._has_capacities:
            with self._lock:
                if not self._has_capacities:
                    self._disk_synced = False
                    self._shm_synced = False
                    if self._queue_capacity > 0 or self._allow_extension:
                        self._capacities = route_capacities(
                            self._program,
                            self._router,
                            self._queue_capacity,
                            allow_extension=self._allow_extension,
                        )
                    self._has_capacities = True
        return self._capacities

    @property
    def labeling(self) -> Labeling:
        """The constraint labeling under this entry's lookahead."""
        if self._labeling is None:
            with self._lock:
                if self._labeling is None:
                    self._disk_synced = False
                    self._shm_synced = False
                    self._labeling = constraint_labeling(
                        self._program, lookahead=self.capacities
                    )
        return self._labeling

    def ordered_groups(
        self, labeling: Labeling
    ) -> dict[Link, tuple[tuple[str, ...], ...]]:
        """Per-link label groups for the ordered policy.

        Only cached when ``labeling`` is this entry's own auto-computed
        labeling — a caller-supplied labeling gets fresh groups.
        """
        from repro.sim.queue_manager import label_groups

        if labeling is not self._labeling:
            return {
                link: label_groups(names, labeling)
                for link, names in self.competing.items()
            }
        if self._ordered_groups is None:
            with self._lock:
                if self._ordered_groups is None:
                    groups = {
                        link: label_groups(names, labeling)
                        for link, names in self.competing.items()
                    }
                    self._disk_synced = False
                    self._shm_synced = False
                    self._ordered_groups = groups
        return self._ordered_groups

    def seed_capacity_independent(self, donor: "AnalysisEntry") -> None:
        """Copy routes/competing from ``donor``, an entry for the same
        program x topology x router under a *different* queue capacity.

        Those two artifacts never depend on capacity, so a capacity
        sweep (notably the frontier planner,
        :mod:`repro.sweep.planner`) can seed each new capacity's entry
        from the first one analyzed and pay only for the
        capacity-*dependent* work (lookahead capacities, labeling).
        Only artifacts the donor has actually computed are copied, an
        already-populated field is never overwritten, and
        ``_disk_synced`` is left untouched: copied artifacts the disk
        tier does not yet hold under *this* key must still be written
        back by :meth:`persist`.
        """
        with donor._lock:
            routes = donor._routes
            competing = donor._competing
        with self._lock:
            if routes is not None and self._routes is None:
                self._routes = routes
            if competing is not None and self._competing is None:
                self._competing = competing

    # ------------------------------------------------------------------
    # Persistent tiers (repro.perf.shm_cache, repro.perf.disk_cache)
    # ------------------------------------------------------------------

    def preload_artifacts(self, artifacts: dict, *, source: str = "disk") -> None:
        """Seed this entry from a persistent-tier artifact dict.

        Only known fields are accepted; anything missing stays lazily
        computable. A disk-served entry (``source="disk"``) stays
        unsynced with the shm tier so the owning parent's next
        :meth:`persist` publishes it into the arena — that is how a
        disk-warm cache populates shared memory. A shm-served entry
        (``source="shm"``) marks *both* tiers synced: whoever published
        it owns its persistence, and a reader writing the identical
        artifacts back to disk would turn every LRU-thrashed revisit in
        a worker into a redundant pickle + file write.
        """
        with self._lock:
            routes = artifacts.get("routes")
            if isinstance(routes, dict):
                self._routes = routes
            competing = artifacts.get("competing")
            if isinstance(competing, dict):
                self._competing = competing
            if artifacts.get("has_capacities"):
                capacities = artifacts.get("capacities")
                if capacities is None or isinstance(capacities, LookaheadConfig):
                    self._capacities = capacities
                    self._has_capacities = True
            labeling = artifacts.get("labeling")
            if isinstance(labeling, Labeling):
                self._labeling = labeling
            ordered_groups = artifacts.get("ordered_groups")
            if isinstance(ordered_groups, dict):
                self._ordered_groups = ordered_groups
            if source == "shm":
                self._shm_synced = True
                self._disk_synced = True
            else:
                self._disk_synced = True

    def export_artifacts(self) -> dict:
        """Everything computed so far, in disk-tier artifact form."""
        with self._lock:
            return {
                "routes": self._routes,
                "competing": self._competing,
                "capacities": self._capacities,
                "has_capacities": self._has_capacities,
                "labeling": self._labeling,
                "ordered_groups": self._ordered_groups,
            }

    def persist(self) -> bool:
        """Write this entry to the active persistent tiers, if needed.

        The shm tier is published first (it is the one workers race to
        read), then the disk tier; each is skipped when absent or when
        nothing changed since the last load/store for that tier. Returns
        whether the *disk* tier stored (the long-standing contract); a
        no-op also covers the no-content-key ``reuse_analysis=False``
        path. Publishing from a non-owning process is refused inside
        :meth:`~repro.perf.shm_cache.ShmAnalysisCache.publish` at the
        cost of one pid check.
        """
        from repro.perf.disk_cache import active_disk_cache
        from repro.perf.shm_cache import active_shm_cache

        if self.key is None:
            return False
        shm = active_shm_cache()
        if shm is not None and not self._shm_synced:
            if shm.publish(self.key, self.export_artifacts()):
                with self._lock:
                    self._shm_synced = True
        disk = active_disk_cache()
        if disk is None or self._disk_synced:
            return False
        stored = disk.store(self.key, self.export_artifacts())
        if stored:
            with self._lock:
                self._disk_synced = True
        return stored


class AnalysisCache:
    """Bounded, thread-safe LRU of :class:`AnalysisEntry` objects."""

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[AnalysisKey, AnalysisEntry] = OrderedDict()

    def lookup(
        self,
        program: ArrayProgram,
        topology: Topology,
        router: Router,
        config: ArrayConfig,
    ) -> AnalysisEntry | None:
        """The (possibly shared) entry for this content key.

        Returns ``None`` when the topology or router cannot be
        fingerprinted (custom subclasses without an
        ``analysis_fingerprint`` token) — the caller must fall back to
        fresh analysis rather than risk sharing wrong routes.
        """
        topology_fp = topology_fingerprint(topology)
        router_fp = router_fingerprint(router)
        if topology_fp is None or router_fp is None:
            return None
        key = AnalysisKey(
            program=program_fingerprint(program),
            topology=topology_fp,
            router=router_fp,
            queue_capacity=config.queue_capacity,
            allow_extension=config.allow_extension,
        )
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry
            self.misses += 1
            entry = AnalysisEntry(
                program,
                router,
                config.queue_capacity,
                config.allow_extension,
                key=key,
            )
            self._entries[key] = entry
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        # Probe the persistent tiers outside the cache lock —
        # deserialization is slow compared to a dict hit and must not
        # serialize other threads. Order is cost order: the shm tier
        # (one checksum-verified read, memoized per process) before the
        # disk tier (file read plus two unpickles).
        from repro.perf.disk_cache import active_disk_cache
        from repro.perf.shm_cache import active_shm_cache

        shm = active_shm_cache()
        if shm is not None:
            artifacts = shm.load(key)
            if artifacts is not None:
                entry.preload_artifacts(artifacts, source="shm")
                return entry
        disk = active_disk_cache()
        if disk is not None:
            artifacts = disk.load(key)
            if artifacts is not None:
                entry.preload_artifacts(artifacts)
        return entry

    def publish_shm(self) -> int:
        """Publish every warm entry into the shm tier; entries published.

        Called by the sweep session right after it creates the arena, so
        workers start with the parent's whole working set instead of
        only what the parent persists from then on. Already-synced
        entries and keyless entries are skipped; a refused publish (full
        arena) just leaves that entry for the disk tier.
        """
        from repro.perf.shm_cache import active_shm_cache

        shm = active_shm_cache()
        if shm is None:
            return 0
        with self._lock:
            entries = list(self._entries.values())
        published = 0
        for entry in entries:
            if entry.key is None or entry._shm_synced:
                continue
            if shm.publish(entry.key, entry.export_artifacts()):
                with entry._lock:
                    entry._shm_synced = True
                published += 1
        return published

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        """Current size and hit/miss counters."""
        with self._lock:
            return {
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }

    def __len__(self) -> int:
        return len(self._entries)


#: Process-global cache used by :class:`repro.sim.runtime.Simulator` when
#: ``reuse_analysis=True`` (the default).
GLOBAL_ANALYSIS_CACHE = AnalysisCache()


def clear_analysis_cache() -> None:
    """Reset the process-global analysis cache."""
    GLOBAL_ANALYSIS_CACHE.clear()


def analysis_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the process-global cache."""
    return GLOBAL_ANALYSIS_CACHE.stats()
