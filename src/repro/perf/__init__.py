"""Performance subsystem: static-analysis caching for the simulator.

Repeated simulations of the same program (parameter sweeps, policy
ablations, Theorem-1 ensembles) share one content-keyed
:class:`AnalysisEntry` holding routes, competing-message sets, lookahead
capacities and the constraint labeling — so only the first run pays for
static analysis. See :mod:`repro.perf.analysis_cache`.

Lookups resolve through three tiers, cheapest first:

1. **memory** — the process-local LRU (:class:`AnalysisCache`);
2. **shm** — a single-host shared-memory arena
   (:mod:`repro.perf.shm_cache`) the sweep session publishes its warm
   analyses into: pool workers attach once and resolve content
   fingerprints with zero filesystem I/O, memoizing deserialized
   entries per process. Disable with ``REPRO_ANALYSIS_SHM_CACHE=0``;
3. **disk** — the persistent tier (:mod:`repro.perf.disk_cache`):
   export ``REPRO_ANALYSIS_DISK_CACHE=/path/to/dir`` or call
   :func:`configure_disk_cache` and every process sharing that
   directory — pool workers, restarted sweeps, separate sessions —
   reuses analyses computed by any other.
"""

from repro.perf.analysis_cache import (
    AnalysisCache,
    AnalysisEntry,
    AnalysisKey,
    GLOBAL_ANALYSIS_CACHE,
    analysis_cache_stats,
    clear_analysis_cache,
    program_fingerprint,
    router_fingerprint,
    topology_fingerprint,
)
from repro.perf.disk_cache import (
    DiskAnalysisCache,
    active_disk_cache,
    active_disk_cache_config,
    configure_disk_cache,
)
from repro.perf.shm_cache import (
    ShmAnalysisCache,
    active_shm_cache,
    attach_shm_cache,
    ensure_shm_cache,
    reset_shm_cache_state,
    shm_cache_stats,
)

__all__ = [
    "AnalysisCache",
    "AnalysisEntry",
    "AnalysisKey",
    "DiskAnalysisCache",
    "GLOBAL_ANALYSIS_CACHE",
    "ShmAnalysisCache",
    "active_disk_cache",
    "active_disk_cache_config",
    "active_shm_cache",
    "analysis_cache_stats",
    "attach_shm_cache",
    "clear_analysis_cache",
    "configure_disk_cache",
    "ensure_shm_cache",
    "program_fingerprint",
    "reset_shm_cache_state",
    "router_fingerprint",
    "shm_cache_stats",
    "topology_fingerprint",
]
