"""Performance subsystem: static-analysis caching for the simulator.

Repeated simulations of the same program (parameter sweeps, policy
ablations, Theorem-1 ensembles) share one content-keyed
:class:`AnalysisEntry` holding routes, competing-message sets, lookahead
capacities and the constraint labeling — so only the first run pays for
static analysis. See :mod:`repro.perf.analysis_cache`.
"""

from repro.perf.analysis_cache import (
    AnalysisCache,
    AnalysisEntry,
    AnalysisKey,
    GLOBAL_ANALYSIS_CACHE,
    analysis_cache_stats,
    clear_analysis_cache,
    program_fingerprint,
    router_fingerprint,
    topology_fingerprint,
)

__all__ = [
    "AnalysisCache",
    "AnalysisEntry",
    "AnalysisKey",
    "GLOBAL_ANALYSIS_CACHE",
    "analysis_cache_stats",
    "clear_analysis_cache",
    "program_fingerprint",
    "router_fingerprint",
    "topology_fingerprint",
]
