"""Performance subsystem: static-analysis caching for the simulator.

Repeated simulations of the same program (parameter sweeps, policy
ablations, Theorem-1 ensembles) share one content-keyed
:class:`AnalysisEntry` holding routes, competing-message sets, lookahead
capacities and the constraint labeling — so only the first run pays for
static analysis. See :mod:`repro.perf.analysis_cache`.

A persistent disk tier (:mod:`repro.perf.disk_cache`) sits under the
in-memory cache: export ``REPRO_ANALYSIS_DISK_CACHE=/path/to/dir`` or
call :func:`configure_disk_cache` and every process sharing that
directory — pool workers, restarted sweeps, separate sessions — reuses
analyses computed by any other.
"""

from repro.perf.analysis_cache import (
    AnalysisCache,
    AnalysisEntry,
    AnalysisKey,
    GLOBAL_ANALYSIS_CACHE,
    analysis_cache_stats,
    clear_analysis_cache,
    program_fingerprint,
    router_fingerprint,
    topology_fingerprint,
)
from repro.perf.disk_cache import (
    DiskAnalysisCache,
    active_disk_cache,
    active_disk_cache_config,
    configure_disk_cache,
)

__all__ = [
    "AnalysisCache",
    "AnalysisEntry",
    "AnalysisKey",
    "DiskAnalysisCache",
    "GLOBAL_ANALYSIS_CACHE",
    "active_disk_cache",
    "active_disk_cache_config",
    "analysis_cache_stats",
    "clear_analysis_cache",
    "configure_disk_cache",
    "program_fingerprint",
    "router_fingerprint",
    "topology_fingerprint",
]
