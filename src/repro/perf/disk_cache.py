"""Persistent cross-process tier under the in-memory analysis cache.

Worker processes and restarted sweep sessions each start with a cold
in-memory :class:`~repro.perf.analysis_cache.AnalysisCache`, so every one
of them used to re-pay routing, competing-message sets, lookahead
capacities and the constraint labeling for programs another process had
already analysed. This module adds a disk tier keyed by the same content
fingerprints (program x topology x router x queue-provisioning bits):

* **atomic writes** — entries are serialized to a temporary file in the
  cache directory and published with :func:`os.replace`, so concurrent
  writers (pool workers racing on the same program) and crashed
  processes can never leave a half-written entry visible;
* **format versioning** — every entry embeds :data:`FORMAT_VERSION` and
  its own :class:`~repro.perf.analysis_cache.AnalysisKey`; a version or
  key mismatch reads as a miss, so upgrading the serialization never
  poisons old caches;
* **corruption tolerance** — any failure to read or deserialize an
  entry (truncated file, foreign bytes, unpicklable content) is treated
  as a miss, never an error.

Enable it by exporting ``REPRO_ANALYSIS_DISK_CACHE=/path/to/dir`` (the
directory is created on demand) or programmatically via
:func:`configure_disk_cache`. :class:`~repro.sim.runtime.Simulator`
persists entries after static analysis completes and
:func:`~repro.sim.batch.simulate_many` / ``simulate_stream`` forward the
configured path into worker processes.

Entries are Python pickles: only point the cache at directories you
trust, exactly as with any pickle-based artifact store.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from pathlib import Path

from repro.perf.analysis_cache import AnalysisKey

#: Bump when the serialized artifact layout changes; old entries then
#: read as misses instead of deserializing into garbage.
FORMAT_VERSION = 1

#: Environment variable naming the cache directory ("" = disabled).
ENV_VAR = "REPRO_ANALYSIS_DISK_CACHE"

_SUFFIX = ".analysis.pkl"


def _key_digest(key: AnalysisKey) -> str:
    h = hashlib.blake2b(digest_size=16)
    h.update(
        f"{key.program}|{key.topology}|{key.router}|"
        f"{key.queue_capacity}|{key.allow_extension}".encode()
    )
    return h.hexdigest()


class DiskAnalysisCache:
    """One directory of pickled analysis artifacts, one file per key."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: AnalysisKey) -> Path:
        return self.directory / f"{_key_digest(key)}{_SUFFIX}"

    def load(self, key: AnalysisKey) -> dict | None:
        """The stored artifact dict for ``key``, or ``None``.

        Version-stamped and key-checked; every read or deserialization
        failure is a miss.
        """
        try:
            raw = self._path(key).read_bytes()
            payload = pickle.loads(raw)
            if (
                isinstance(payload, dict)
                and payload.get("version") == FORMAT_VERSION
                and payload.get("key") == key
                and isinstance(payload.get("artifacts"), dict)
            ):
                self.hits += 1
                return payload["artifacts"]
        except Exception:
            pass
        self.misses += 1
        return None

    def store(self, key: AnalysisKey, artifacts: dict) -> bool:
        """Atomically publish ``artifacts`` under ``key``.

        Returns False (without raising) when the entry cannot be
        serialized or written — unpicklable custom artifacts and full
        disks degrade to "no disk tier", never to a failed simulation.
        """
        payload = {
            "version": FORMAT_VERSION,
            "key": key,
            "artifacts": artifacts,
        }
        path = self._path(key)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            tmp.write_bytes(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
            os.replace(tmp, path)
        except Exception:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        self.stores += 1
        return True

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for entry in self.directory.glob(f"*{_SUFFIX}"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob(f"*{_SUFFIX}"))

    def stats(self) -> dict[str, int]:
        """Entry count plus hit/miss/store counters of this process."""
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }


_lock = threading.Lock()
_configured = False  # has configure_disk_cache overridden the env var?
_active: DiskAnalysisCache | None = None


def configure_disk_cache(
    directory: str | os.PathLike | None,
) -> DiskAnalysisCache | None:
    """Set (or, with ``None``, disable) the process-wide disk tier.

    Overrides :data:`ENV_VAR`. Returns the active cache, if any.
    """
    global _configured, _active
    with _lock:
        _configured = True
        if directory and _active is not None and _active.directory == Path(
            directory
        ):
            return _active  # same directory: keep instance and counters
        _active = DiskAnalysisCache(directory) if directory else None
        return _active


def active_disk_cache() -> DiskAnalysisCache | None:
    """The process-wide disk tier, resolving :data:`ENV_VAR` lazily."""
    global _configured, _active
    with _lock:
        if not _configured:
            _configured = True
            directory = os.environ.get(ENV_VAR, "")
            if directory:
                try:
                    _active = DiskAnalysisCache(directory)
                except OSError:
                    _active = None
        return _active


def reset_disk_cache_state() -> None:
    """Forget the configured/env-resolved state (for tests)."""
    global _configured, _active
    with _lock:
        _configured = False
        _active = None
