"""Persistent cross-process tier under the in-memory analysis cache.

Worker processes and restarted sweep sessions each start with a cold
in-memory :class:`~repro.perf.analysis_cache.AnalysisCache`, so every one
of them used to re-pay routing, competing-message sets, lookahead
capacities and the constraint labeling for programs another process had
already analysed. This module adds a disk tier keyed by the same content
fingerprints (program x topology x router x queue-provisioning bits):

* **atomic writes** — entries are serialized to a temporary file in the
  cache directory and published with :func:`os.replace`, so concurrent
  writers (pool workers racing on the same program) and crashed
  processes can never leave a half-written entry visible;
* **format versioning** — every entry embeds :data:`FORMAT_VERSION` and
  its own :class:`~repro.perf.analysis_cache.AnalysisKey`; a version or
  key mismatch reads as a miss, so upgrading the serialization never
  poisons old caches;
* **corruption tolerance** — the I/O and deserialization failure
  classes a cache legitimately encounters (truncated file, foreign
  bytes, stale class references, permission walls) are treated as
  misses and counted in ``stats()["load_errors"]``; genuine bug-class
  exceptions (:exc:`MemoryError`, a programming error in an artifact's
  ``__setstate__``) propagate instead of hiding behind a silent miss;
* **integrity digest** — the artifact payload is pickled separately and
  stored alongside a BLAKE2 checksum of those exact bytes; a load
  verifies the checksum *before* deserializing the artifacts, so a
  truncated or bit-flipped entry is rejected (and recomputed) without
  ever unpickling corrupt bytes. Writing checksums can be disabled per
  cache instance (``DiskAnalysisCache(dir, checksum=False)``); entries
  written without one are still readable.
* **size-bounded LRU eviction** — with a byte budget
  (``DiskAnalysisCache(dir, max_bytes=N)`` or
  ``REPRO_ANALYSIS_DISK_CACHE_MAX_BYTES``), every store that pushes the
  directory past the budget evicts least-recently-used entries (by
  mtime; loads touch the file, so a hot entry's recency is its last
  *use*, not its write) until the directory fits again. The entry just
  stored is never evicted — spared by identity, immune to coarse
  filesystem timestamps — so one oversized artifact degrades to a
  single-entry cache instead of thrashing. Unbounded by default.

Enable it by exporting ``REPRO_ANALYSIS_DISK_CACHE=/path/to/dir`` (the
directory is created on demand) or programmatically via
:func:`configure_disk_cache`. :class:`~repro.sim.runtime.Simulator`
persists entries after static analysis completes, and the sweep
execution backends (:mod:`repro.sweep.backends`) replay the active
configuration inside every worker process through their
``WorkerContext`` hook (see :func:`active_disk_cache_config`), so
``simulate_many`` / ``simulate_stream`` share the tier across the whole
pool whether it was configured by env var, by argument or by API call.

Entries are Python pickles: only point the cache at directories you
trust, exactly as with any pickle-based artifact store.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from pathlib import Path

from repro.perf.analysis_cache import AnalysisKey

#: Bump when the serialized artifact layout changes; old entries then
#: read as misses instead of deserializing into garbage. Version 2: the
#: crossing engine's dense-int interning landed (artifacts themselves are
#: still name-keyed, but the layout guarantee is re-stated from scratch)
#: and artifacts moved to a separately pickled, checksummed byte payload.
FORMAT_VERSION = 2

#: Environment variable naming the cache directory ("" = disabled).
ENV_VAR = "REPRO_ANALYSIS_DISK_CACHE"

#: Environment variable bounding the cache directory size in bytes
#: (unset, empty or unparsable = unbounded).
MAX_BYTES_ENV_VAR = "REPRO_ANALYSIS_DISK_CACHE_MAX_BYTES"

_SUFFIX = ".analysis.pkl"


def _env_max_bytes() -> int | None:
    raw = os.environ.get(MAX_BYTES_ENV_VAR, "")
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def _key_digest(key: AnalysisKey) -> str:
    h = hashlib.blake2b(digest_size=16)
    h.update(
        f"{key.program}|{key.topology}|{key.router}|"
        f"{key.queue_capacity}|{key.allow_extension}".encode()
    )
    return h.hexdigest()


def _artifact_checksum(blob: bytes) -> str:
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


class DiskAnalysisCache:
    """One directory of pickled analysis artifacts, one file per key.

    Args:
        directory: where entry files live (created on demand).
        checksum: write a BLAKE2 integrity digest with every entry
            (verified on load before the artifacts are deserialized).
            Loading always verifies a digest when one is present,
            regardless of this flag.
        max_bytes: byte budget for the whole directory; every store
            that exceeds it evicts least-recently-used entries (by
            mtime — loads refresh it) until the directory fits. ``None``
            (the default) disables eviction.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        checksum: bool = True,
        max_bytes: int | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.checksum = checksum
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.rejected = 0  # checksum mismatches (a subset of misses)
        self.evictions = 0  # entries removed by the size bound
        self.load_errors = 0  # unreadable/corrupt entries (subset of misses)
        self.store_errors = 0  # failed publishes (store returned False)
        # Running directory-size estimate (this process's view): stores
        # add their payload size, the full scan inside _evict_to_budget
        # resyncs it. Only when the estimate crosses the budget does a
        # store pay the O(entries) directory walk — concurrent writers
        # drift it low, which merely defers their bytes to the next
        # resync (eviction is best-effort hygiene either way).
        self._approx_bytes: int | None = None

    def _path(self, key: AnalysisKey) -> Path:
        return self.directory / f"{_key_digest(key)}{_SUFFIX}"

    def load(self, key: AnalysisKey) -> dict | None:
        """The stored artifact dict for ``key``, or ``None``.

        Version-stamped, key-checked and (when a digest is present)
        checksum-verified *before* the artifact bytes are unpickled. A
        read, verification or deserialization failure of the expected
        I/O/corruption classes is a miss (counted in ``load_errors``);
        anything else — :exc:`MemoryError`, a programming error in an
        artifact's ``__setstate__`` — propagates, because swallowing it
        hides a real bug behind a silent cache miss.
        """
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            # The ordinary cold miss: nothing was ever stored here.
            self.misses += 1
            return None
        except OSError:
            self.load_errors += 1
            self.misses += 1
            return None
        try:
            payload = pickle.loads(raw)
            if (
                isinstance(payload, dict)
                and payload.get("version") == FORMAT_VERSION
                and payload.get("key") == key
                and isinstance(payload.get("artifacts"), bytes)
            ):
                blob = payload["artifacts"]
                digest = payload.get("checksum")
                if digest is not None and digest != _artifact_checksum(blob):
                    self.rejected += 1
                    self.misses += 1
                    return None
                artifacts = pickle.loads(blob)
                if isinstance(artifacts, dict):
                    self.hits += 1
                    try:
                        # Refresh recency: eviction is LRU by mtime, and
                        # a hit counts as a use.
                        os.utime(path)
                    except OSError:
                        pass
                    return artifacts
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                AttributeError, ImportError, IndexError):
            # The classes pickle.loads raises on truncated/foreign/
            # stale bytes (plus OSError from utime-less filesystems).
            self.load_errors += 1
        self.misses += 1
        return None

    def store(self, key: AnalysisKey, artifacts: dict) -> bool:
        """Atomically publish ``artifacts`` under ``key``.

        Returns False (without raising) when the entry cannot be
        serialized or written — unpicklable custom artifacts and full
        disks degrade to "no disk tier", never to a failed simulation.
        """
        try:
            blob = pickle.dumps(artifacts, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError, ValueError,
                RecursionError):
            # The classes pickle.dumps raises on unpicklable content
            # (custom artifacts with closures, cyclic monsters).
            self.store_errors += 1
            return False
        payload = {
            "version": FORMAT_VERSION,
            "key": key,
            "checksum": _artifact_checksum(blob) if self.checksum else None,
            "artifacts": blob,
        }
        path = self._path(key)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.write_bytes(raw)
            if self.max_bytes is not None:
                # Overwrites replace these bytes; keep the estimate flat.
                try:
                    replaced = path.stat().st_size
                except OSError:
                    replaced = 0
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError):
            # Full disks, permission walls, vanished directories: degrade
            # to "no disk tier", never to a failed simulation.
            self.store_errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        self.stores += 1
        if self.max_bytes is not None:
            approx = self._approx_bytes
            if approx is not None:
                approx += len(raw) - replaced
                self._approx_bytes = approx
            if approx is None or approx > self.max_bytes:
                self._evict_to_budget(keep=path)
        return True

    def _evict_to_budget(self, keep: Path | None = None) -> int:
        """Drop least-recently-used entries until the directory fits.

        Returns the number of entries removed. ``keep`` (the entry the
        caller just published) is never a candidate — sparing it by
        identity rather than by mtime position, because coarse
        filesystem timestamps or a concurrent writer can make the
        just-written file sort below an older one. Every stat/unlink
        race (a concurrent writer or evictor) is tolerated — eviction
        is best-effort hygiene, never an error.
        """
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for path in self.directory.glob(f"*{_SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:
                continue
            total += stat.st_size
            if path != keep:
                entries.append((stat.st_mtime, stat.st_size, path))
        if total <= self.max_bytes or not entries:
            self._approx_bytes = total
            return 0
        entries.sort()  # oldest mtime first
        if keep is None:
            entries.pop()  # no published entry to spare: keep the newest
        removed = 0
        for _mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        self.evictions += removed
        self._approx_bytes = total
        return removed

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for entry in self.directory.glob(f"*{_SUFFIX}"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        self._approx_bytes = None  # resync on the next bounded store
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob(f"*{_SUFFIX}"))

    def stats(self) -> dict[str, int]:
        """Entry count plus hit/miss/store counters of this process."""
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "rejected": self.rejected,
            "evictions": self.evictions,
            "load_errors": self.load_errors,
            "store_errors": self.store_errors,
        }


_lock = threading.Lock()
_configured = False  # has configure_disk_cache overridden the env var?
_active: DiskAnalysisCache | None = None


def configure_disk_cache(
    directory: str | os.PathLike | None,
    max_bytes: int | None = None,
) -> DiskAnalysisCache | None:
    """Set (or, with ``None``, disable) the process-wide disk tier.

    Overrides :data:`ENV_VAR`; ``max_bytes`` bounds the directory size
    (``None`` falls back to :data:`MAX_BYTES_ENV_VAR`, unbounded when
    that is unset too). Returns the active cache, if any.
    """
    global _configured, _active
    with _lock:
        _configured = True
        budget = max_bytes if max_bytes is not None else _env_max_bytes()
        if (
            directory
            and _active is not None
            and _active.directory == Path(directory)
            and _active.max_bytes == budget
        ):
            return _active  # same configuration: keep instance + counters
        _active = (
            DiskAnalysisCache(directory, max_bytes=budget)
            if directory
            else None
        )
        return _active


def active_disk_cache() -> DiskAnalysisCache | None:
    """The process-wide disk tier, resolving :data:`ENV_VAR` lazily."""
    global _configured, _active
    with _lock:
        if not _configured:
            _configured = True
            directory = os.environ.get(ENV_VAR, "")
            if directory:
                try:
                    _active = DiskAnalysisCache(
                        directory, max_bytes=_env_max_bytes()
                    )
                except OSError:
                    _active = None
        return _active


def active_disk_cache_config() -> tuple[str, int | None] | None:
    """The active tier's ``(directory, max_bytes)``, or ``None``.

    The worker-configuration hook of the sweep backends
    (:class:`repro.sweep.backends.WorkerContext`) captures this in the
    parent and replays it inside every pool worker, so a disk tier set
    up programmatically via :func:`configure_disk_cache` — invisible to
    child processes, unlike :data:`ENV_VAR` — is still shared by the
    whole pool.
    """
    cache = active_disk_cache()
    if cache is None:
        return None
    return (str(cache.directory), cache.max_bytes)


def reset_disk_cache_state() -> None:
    """Forget the configured/env-resolved state (for tests)."""
    global _configured, _active
    with _lock:
        _configured = False
        _active = None
