"""Systolic algorithm program generators and the paper's figure programs."""

from repro.algorithms.figures import (
    all_figures,
    fig2_expected_outputs,
    fig2_fir,
    fig2_registers,
    fig5_p1,
    fig5_p2,
    fig5_p3,
    fig6_cycle,
    fig7_program,
    fig8_program,
    fig9_program,
)
from repro.algorithms.backsub import (
    backsub_expected,
    backsub_program,
    backsub_solution,
)
from repro.algorithms.fir import (
    fir_expected,
    fir_host_registers_expected,
    fir_program,
    fir_registers,
)
from repro.algorithms.horner import (
    horner_expected,
    horner_program,
    horner_registers,
)
from repro.algorithms.matmul2d import (
    matmul_expected,
    matmul_program,
    matmul_results,
)
from repro.algorithms.matvec import (
    matvec_expected,
    matvec_program,
    matvec_registers,
)
from repro.algorithms.oddeven import (
    oddeven_program,
    oddeven_registers,
    oddeven_result,
)
from repro.algorithms.seqcompare import (
    encode,
    lcs_expected,
    lcs_program,
    lcs_program_for,
    lcs_registers,
)

__all__ = [
    "all_figures",
    "backsub_expected",
    "backsub_program",
    "backsub_solution",
    "encode",
    "fig2_expected_outputs",
    "fig2_fir",
    "fig2_registers",
    "fig5_p1",
    "fig5_p2",
    "fig5_p3",
    "fig6_cycle",
    "fig7_program",
    "fig8_program",
    "fig9_program",
    "fir_expected",
    "fir_host_registers_expected",
    "fir_program",
    "fir_registers",
    "horner_expected",
    "horner_program",
    "horner_registers",
    "lcs_expected",
    "lcs_program",
    "lcs_program_for",
    "lcs_registers",
    "matmul_expected",
    "matmul_program",
    "matmul_results",
    "matvec_expected",
    "matvec_program",
    "matvec_registers",
    "oddeven_program",
    "oddeven_registers",
    "oddeven_result",
]
