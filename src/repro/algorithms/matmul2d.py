"""Systolic matrix multiplication on a 2-D mesh.

``C = A @ B`` with A of shape ``m x k`` and B of shape ``k x n`` on an
``m x n`` mesh: A streams in from the west edge (row i enters row i of the
mesh), B from the north edge (column j enters column j), each cell
accumulates its ``c_ij`` locally, relaying operands east/south. After the
accumulation, every non-edge cell unloads its result eastward; the east
edge collects its row's results (nearest first). The unload messages are
multi-hop along mesh rows, exercising XY routing and the forwarder chain.
"""

from __future__ import annotations

from repro.arch.topology import Mesh2D
from repro.core.message import Message
from repro.core.ops import COMPUTE, Op, R, W
from repro.core.program import ArrayProgram


def _fma(c: float, a: float, b: float) -> float:
    return c + a * b


def matmul_program(
    a: list[list[float]], b: list[list[float]], name: str | None = None
) -> tuple[ArrayProgram, Mesh2D]:
    """Build the mesh program and its topology for ``a @ b``.

    Returns the program plus the :class:`Mesh2D` it must run on (the mesh
    has one extra west column and north row of *feeder* cells standing in
    for the array boundary, mirroring how the paper treats the host as a
    cell).
    """
    m, k = len(a), len(a[0])
    k2, n = len(b), len(b[0])
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    # Mesh of (m+1) x (n+1): row 0 are north feeders, column 0 west feeders.
    mesh = Mesh2D(m + 1, n + 1)
    messages: list[Message] = []
    programs: dict[str, list[Op]] = {}

    def cell(i: int, j: int) -> str:
        return mesh.cell_at(i, j)

    def a_msg(i: int, j: int) -> str:
        """A-stream entering compute cell (i, j) from the west."""
        return f"A{i}_{j}"

    def b_msg(i: int, j: int) -> str:
        """B-stream entering compute cell (i, j) from the north."""
        return f"B{i}_{j}"

    def u_msg(i: int, j: int) -> str:
        """Unload message carrying c_ij to the east edge."""
        return f"U{i}_{j}"

    for i in range(1, m + 1):
        for j in range(1, n + 1):
            messages.append(Message(a_msg(i, j), cell(i, j - 1), cell(i, j), k))
            messages.append(Message(b_msg(i, j), cell(i - 1, j), cell(i, j), k))
            if j < n:
                messages.append(Message(u_msg(i, j), cell(i, j), cell(i, n), 1))

    # West feeders stream the rows of A; north feeders the columns of B.
    for i in range(1, m + 1):
        programs[cell(i, 0)] = [
            W(a_msg(i, 1), constant=a[i - 1][t]) for t in range(k)
        ]
    for j in range(1, n + 1):
        programs[cell(0, j)] = [
            W(b_msg(1, j), constant=b[t][j - 1]) for t in range(k)
        ]
    programs[cell(0, 0)] = []

    for i in range(1, m + 1):
        for j in range(1, n + 1):
            ops: list[Op] = [COMPUTE("c", lambda: 0.0, [])]
            for _t in range(k):
                ops.append(R(a_msg(i, j), into="a"))
                if j < n:
                    ops.append(W(a_msg(i, j + 1), from_register="a"))
                ops.append(R(b_msg(i, j), into="b"))
                if i < m:
                    ops.append(W(b_msg(i + 1, j), from_register="b"))
                ops.append(COMPUTE("c", _fma, ["c", "a", "b"]))
            if j < n:
                ops.append(W(u_msg(i, j), from_register="c"))
            else:
                # East edge: collect the row's results, nearest cell first.
                for src in range(n - 1, 0, -1):
                    ops.append(R(u_msg(i, src), into=f"c{src}"))
            programs[cell(i, j)] = ops

    program = ArrayProgram(
        mesh.cells, messages, programs, name=name or f"matmul-{m}x{k}x{n}"
    )
    return program, mesh


def matmul_expected(a: list[list[float]], b: list[list[float]]) -> list[list[float]]:
    """Reference product ``a @ b``."""
    m, k, n = len(a), len(a[0]), len(b[0])
    return [
        [sum(a[i][t] * b[t][j] for t in range(k)) for j in range(n)]
        for i in range(m)
    ]


def matmul_results(result_registers: dict, m: int, n: int, mesh: Mesh2D) -> list[list[float]]:
    """Extract the computed product from a finished simulation's registers.

    Diagonal of responsibility: ``c_ij`` lives in the register file of
    compute cell (i, j) (edge cells additionally hold their row's
    collected values).
    """
    out = []
    for i in range(1, m + 1):
        row = []
        for j in range(1, n + 1):
            row.append(result_registers[mesh.cell_at(i, j)]["c"])
        out.append(row)
    return out
