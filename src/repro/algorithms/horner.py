"""Pipelined polynomial evaluation (Horner's rule) on a linear array.

``p(x) = a_d x^d + ... + a_0`` evaluated at ``m`` points. Cell ``Cj``
holds coefficient ``a_{d-j+1}`` (so the accumulation starts from the
leading coefficient) and performs one fused step ``s := s * x + a`` per
point. Evaluation points stream rightward, partial accumulations follow
them, and results return to the host over the full reverse path.
"""

from __future__ import annotations

from repro.core.message import Message
from repro.core.ops import COMPUTE, Op, R, W
from repro.core.program import ArrayProgram


def _horner_step(s: float, x: float, a: float) -> float:
    return s * x + a


def _init(a: float) -> float:
    return a


def horner_cells(degree: int) -> tuple[str, ...]:
    """HOST plus one cell per coefficient below the leading one."""
    return ("HOST",) + tuple(f"C{j + 1}" for j in range(degree))


def horner_program(
    degree: int, points: list[float], name: str | None = None
) -> ArrayProgram:
    """Build the evaluation pipeline for a polynomial of ``degree``.

    Messages: ``X<j>`` carries the points into cell j (each cell forwards
    the stream), ``S<j>`` the accumulations, and ``P`` the finished values
    back to the host.
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    d, m = degree, len(points)
    if m < 1:
        raise ValueError("need at least one evaluation point")
    cells = horner_cells(d)
    messages: list[Message] = []
    programs: dict[str, list[Op]] = {}

    for j in range(1, d + 1):
        messages.append(Message(f"X{j}", cells[j - 1], cells[j], m))
        if j >= 2:
            messages.append(Message(f"S{j}", cells[j - 1], cells[j], m))
    messages.append(Message("P", cells[d], "HOST", m))

    # One-point lag between feeding x_t and collecting p(x_t) keeps the
    # pipeline busy — but only a pipeline at least two cells deep has the
    # slack to absorb it; at depth one the lag is exactly the write-first
    # deadlock of Fig. 5/P2, so the host then runs strictly alternating.
    host: list[Op] = []
    if d >= 2:
        host.append(W("X1", constant=points[0]))
        for t in range(1, m):
            host.append(W("X1", constant=points[t]))
            host.append(R("P", into=f"p{t}"))
        host.append(R("P", into=f"p{m}"))
    else:
        for t in range(m):
            host.append(W("X1", constant=points[t]))
            host.append(R("P", into=f"p{t + 1}"))
    programs["HOST"] = host

    for j in range(1, d + 1):
        ops: list[Op] = []
        is_first, is_last = j == 1, j == d
        for _t in range(m):
            ops.append(R(f"X{j}", into="x"))
            if not is_last:
                ops.append(W(f"X{j + 1}", from_register="x"))
            if is_first:
                # s = a_d * x + a_{d-1} folded as init-then-step.
                ops.append(COMPUTE("s", _init, ["lead"]))
                ops.append(COMPUTE("s", _horner_step, ["s", "x", "a"]))
            else:
                ops.append(R(f"S{j}", into="s"))
                ops.append(COMPUTE("s", _horner_step, ["s", "x", "a"]))
            ops.append(W("P" if is_last else f"S{j + 1}", from_register="s"))
        programs[cells[j]] = ops

    return ArrayProgram(cells, messages, programs, name=name or f"horner-d{d}")


def horner_registers(
    coefficients: list[float],
) -> dict[str, dict[str, float | None]]:
    """Preload registers: ``coefficients`` ordered ``a_d .. a_0``.

    Cell C1 holds the leading coefficient (register ``lead``) plus
    ``a_{d-1}``; cell Cj (j >= 2) holds ``a_{d-j}``.
    """
    d = len(coefficients) - 1
    if d < 1:
        raise ValueError("polynomial must have degree >= 1")
    regs: dict[str, dict[str, float | None]] = {
        "C1": {"lead": coefficients[0], "a": coefficients[1]}
    }
    for j in range(2, d + 1):
        regs[f"C{j}"] = {"a": coefficients[j]}
    return regs


def horner_expected(coefficients: list[float], points: list[float]) -> list[float]:
    """Reference evaluation of the polynomial at every point."""
    out = []
    for x in points:
        s = coefficients[0]
        for a in coefficients[1:]:
            s = s * x + a
        out.append(s)
    return out
