"""Systolic matrix-vector multiplication on a linear array.

``y = A x`` with an ``m x n`` matrix: cell ``Cj`` holds ``x_j`` preloaded;
the host streams A row-major into the array. Each cell keeps its own
coefficient from every row, relays the remainder rightward, and folds
``a_ij * x_j`` into the partial sum flowing along the row. The completed
``y_i`` returns from the last cell to the host across the whole array —
a genuinely multi-hop reverse route exercising the forwarder substrate.
"""

from __future__ import annotations

from repro.core.message import Message
from repro.core.ops import COMPUTE, Op, R, W
from repro.core.program import ArrayProgram


def _fma(s: float, a: float, x: float) -> float:
    return s + a * x


def _scale(a: float, x: float) -> float:
    return a * x


def matvec_cells(n: int) -> tuple[str, ...]:
    """Cell names: HOST, C1..Cn (one cell per vector element)."""
    return ("HOST",) + tuple(f"C{j + 1}" for j in range(n))


def matvec_program(
    matrix: list[list[float]], name: str | None = None
) -> ArrayProgram:
    """Build the program streaming ``matrix`` through the array.

    Messages:

    * ``A<j>`` — coefficient stream entering cell j, length ``m*(n-j+1)``;
    * ``S<j>`` — partial sums from cell j-1 to cell j, length ``m``;
    * ``Y`` — finished results from the last cell back to the host.
    """
    m = len(matrix)
    if m == 0 or any(len(row) != len(matrix[0]) for row in matrix):
        raise ValueError("matrix must be non-empty and rectangular")
    n = len(matrix[0])
    cells = matvec_cells(n)
    messages: list[Message] = []
    programs: dict[str, list[Op]] = {}

    def a_msg(j: int) -> str:
        return f"A{j}"

    def s_msg(j: int) -> str:
        return f"S{j}"

    for j in range(1, n + 1):
        messages.append(Message(a_msg(j), cells[j - 1], cells[j], m * (n - j + 1)))
        if j >= 2:
            messages.append(Message(s_msg(j), cells[j - 1], cells[j], m))
    messages.append(Message("Y", cells[n], "HOST", m))

    # The host interleaves result reads with row streaming (one-row lag):
    # writing the whole matrix before reading any y would stall the S-chain
    # once the pipeline backs up — precisely the deadlock shape of Fig. 7.
    host: list[Op] = []
    for j in range(n):
        host.append(W(a_msg(1), constant=matrix[0][j]))
    for i in range(1, m):
        for j in range(n):
            host.append(W(a_msg(1), constant=matrix[i][j]))
        host.append(R("Y", into=f"y{i}"))
    host.append(R("Y", into=f"y{m}"))
    programs["HOST"] = host

    for j in range(1, n + 1):
        ops: list[Op] = []
        is_first, is_last = j == 1, j == n
        for _i in range(m):
            ops.append(R(a_msg(j), into="a"))
            for _t in range(n - j):
                ops.append(R(a_msg(j), into="relay"))
                ops.append(W(a_msg(j + 1), from_register="relay"))
            if is_first:
                ops.append(COMPUTE("s", _scale, ["a", "x"]))
            else:
                ops.append(R(s_msg(j), into="s"))
                ops.append(COMPUTE("s", _fma, ["s", "a", "x"]))
            if is_last:
                ops.append(W("Y", from_register="s"))
            else:
                ops.append(W(s_msg(j + 1), from_register="s"))
        programs[cells[j]] = ops

    return ArrayProgram(cells, messages, programs, name=name or f"matvec-{m}x{n}")


def matvec_registers(x: list[float]) -> dict[str, dict[str, float | None]]:
    """Preload ``x_j`` into cell ``Cj``."""
    return {f"C{j + 1}": {"x": x[j]} for j in range(len(x))}


def matvec_expected(matrix: list[list[float]], x: list[float]) -> list[float]:
    """Reference result ``y = A x``."""
    return [sum(a * b for a, b in zip(row, x)) for row in matrix]
