"""Systolic triangular solve (forward substitution) on a linear array.

Solves ``L x = b`` for lower-triangular L — the classic Kung-Leiserson
systolic workload. Cell ``Cj`` owns ``x_j``: rows stream in from the
host, each cell folds ``L[i][j] * x_j`` into the travelling partial sum,
and the diagonal cell completes ``x_i = (b_i - s) / L[i][i]``, storing it
for later rows and shipping it back to the host over the reverse path.

The solved values return only after a cell's last row work: collecting
``x_i`` mid-stream would interleave the returns with the row stream at
the host, making every ``X<i>`` related to the row message (equal labels,
one queue each — n queues on the first reverse link). Deferring the
returns keeps the labels distinct, so a single queue per link suffices
under the ordered policy, and the row stream still pipelines freely.
"""

from __future__ import annotations

from repro.core.message import Message
from repro.core.ops import COMPUTE, Op, R, W
from repro.core.program import ArrayProgram


def _fold(s: float, coeff: float, x: float) -> float:
    return s + coeff * x


def _solve(b: float, s: float, diag: float) -> float:
    return (b - s) / diag


def _scale(coeff: float, x: float) -> float:
    return coeff * x


def backsub_cells(n: int) -> tuple[str, ...]:
    """HOST plus one cell per unknown."""
    return ("HOST",) + tuple(f"C{j + 1}" for j in range(n))


def backsub_program(
    lower: list[list[float]], b: list[float], name: str | None = None
) -> ArrayProgram:
    """Build the forward-substitution program for ``lower @ x = b``.

    Messages: ``A<j>`` carries row segments (coefficients then the b
    entry) into cell j; ``S<j>`` the partial sums; ``X<i>`` returns the
    solved ``x_i`` from cell ``Ci`` to the host.
    """
    n = len(b)
    if len(lower) != n or any(len(row) < i + 1 for i, row in enumerate(lower)):
        raise ValueError("need an n x n lower-triangular matrix and length-n b")
    cells = backsub_cells(n)
    messages: list[Message] = []
    programs: dict[str, list[Op]] = {}

    def a_msg(j: int) -> str:
        return f"A{j}"

    def s_msg(j: int) -> str:
        return f"S{j}"

    # Row i enters cell j (1-based, j <= i) as L[i][j..i] then b_i: that
    # is (i - j + 2) words; cell j keeps one coefficient and forwards the
    # rest.
    for j in range(1, n + 1):
        length = sum((i - j + 2) for i in range(j, n + 1))
        messages.append(Message(a_msg(j), cells[j - 1], cells[j], length))
        if j >= 2:
            messages.append(Message(s_msg(j), cells[j - 1], cells[j], n - j + 1))
    for i in range(1, n + 1):
        messages.append(Message(f"X{i}", cells[i], "HOST", 1))

    host: list[Op] = []
    for i in range(1, n + 1):
        for j in range(1, i + 1):
            host.append(W(a_msg(1), constant=lower[i - 1][j - 1]))
        host.append(W(a_msg(1), constant=b[i - 1]))
    for i in range(1, n + 1):
        host.append(R(f"X{i}", into=f"x{i}"))
    programs["HOST"] = host

    for j in range(1, n + 1):
        ops: list[Op] = []
        # Row i == j: solve for x_j (kept in a register until the end).
        ops.append(R(a_msg(j), into="diag"))
        ops.append(R(a_msg(j), into="b"))
        if j == 1:
            ops.append(COMPUTE("s", lambda: 0.0, []))
        else:
            ops.append(R(s_msg(j), into="s"))
        ops.append(COMPUTE("x", _solve, ["b", "s", "diag"]))
        # Rows i > j: fold our x_j into the travelling sum.
        for i in range(j + 1, n + 1):
            ops.append(R(a_msg(j), into="coeff"))
            for _t in range(i - j + 1):  # forward L[i][j+1..i] and b_i
                ops.append(R(a_msg(j), into="relay"))
                ops.append(W(a_msg(j + 1), from_register="relay"))
            if j == 1:
                ops.append(COMPUTE("s", _scale, ["coeff", "x"]))
            else:
                ops.append(R(s_msg(j), into="s"))
                ops.append(COMPUTE("s", _fold, ["s", "coeff", "x"]))
            ops.append(W(s_msg(j + 1), from_register="s"))
        ops.append(W(f"X{j}", from_register="x"))
        programs[cells[j]] = ops

    return ArrayProgram(cells, messages, programs, name=name or f"backsub-{n}")


def backsub_expected(lower: list[list[float]], b: list[float]) -> list[float]:
    """Reference forward substitution."""
    n = len(b)
    x: list[float] = []
    for i in range(n):
        s = sum(lower[i][j] * x[j] for j in range(i))
        x.append((b[i] - s) / lower[i][i])
    return x


def backsub_solution(registers: dict, n: int) -> list[float]:
    """Extract the solved vector from the host's registers."""
    return [registers["HOST"][f"x{i + 1}"] for i in range(n)]
