"""Systolic sequence comparison (longest common subsequence).

The paper's reference [8] is Lopresti's P-NAC, "a systolic array for
comparing nucleic acid sequences"; this module implements the classic
linear-array LCS recurrence in that spirit. Cell ``Cj`` holds character
``b_j`` of sequence B. Sequence A streams through the array; alongside
each ``a_i`` travels the DP value ``D[i][j-1]``, and every cell keeps
``D[i-1][j]`` and ``D[i-1][j-1]`` in registers to close the recurrence

    D[i][j] = max(D[i-1][j], D[i][j-1], D[i-1][j-1] + [a_i == b_j]).

The final column of D returns to the host; its last entry is the LCS
length.
"""

from __future__ import annotations

from repro.core.message import Message
from repro.core.ops import COMPUTE, Op, R, W
from repro.core.program import ArrayProgram


def _match_bonus(diag: float, a: float, b: float) -> float:
    return diag + (1.0 if a == b else 0.0)


def _max3(up: float, left: float, cand: float) -> float:
    return max(up, left, cand)


def _copy(value: float) -> float:
    return value


def lcs_cells(n: int) -> tuple[str, ...]:
    """HOST plus one cell per character of sequence B."""
    return ("HOST",) + tuple(f"C{j + 1}" for j in range(n))


def lcs_program(m: int, n: int, a_codes: list[float]) -> ArrayProgram:
    """Build the comparison pipeline for |A| = m, |B| = n.

    ``a_codes`` are numeric character codes for A (length m). B's codes
    are preloaded via :func:`lcs_registers`.
    """
    if len(a_codes) != m:
        raise ValueError(f"need {m} codes for A, got {len(a_codes)}")
    cells = lcs_cells(n)
    messages: list[Message] = []
    programs: dict[str, list[Op]] = {}

    for j in range(1, n + 1):
        messages.append(Message(f"A{j}", cells[j - 1], cells[j], m))
        messages.append(Message(f"D{j}", cells[j - 1], cells[j], m))
    messages.append(Message("OUT", cells[n], "HOST", m))

    # Row i of the DP enters as (a_i, D[i][0] = 0); a one-row output lag
    # keeps the pipeline busy, but needs depth >= 2 to be safe (cf. the
    # same guard in repro.algorithms.horner).
    host: list[Op] = []
    if n >= 2:
        host += [W("A1", constant=a_codes[0]), W("D1", constant=0.0)]
        for i in range(1, m):
            host.append(W("A1", constant=a_codes[i]))
            host.append(W("D1", constant=0.0))
            host.append(R("OUT", into=f"d{i}"))
        host.append(R("OUT", into=f"d{m}"))
    else:
        for i in range(m):
            host.append(W("A1", constant=a_codes[i]))
            host.append(W("D1", constant=0.0))
            host.append(R("OUT", into=f"d{i + 1}"))
    programs["HOST"] = host

    for j in range(1, n + 1):
        is_last = j == n
        out_a, out_d = (None, "OUT") if is_last else (f"A{j + 1}", f"D{j + 1}")
        ops: list[Op] = [
            COMPUTE("up", lambda: 0.0, []),  # D[0][j] = 0
            COMPUTE("diag", lambda: 0.0, []),  # D[0][j-1] = 0
        ]
        for _i in range(m):
            ops.append(R(f"A{j}", into="a"))
            ops.append(R(f"D{j}", into="left"))
            ops.append(COMPUTE("cand", _match_bonus, ["diag", "a", "b"]))
            ops.append(COMPUTE("d", _max3, ["up", "left", "cand"]))
            if out_a is not None:
                ops.append(W(out_a, from_register="a"))
            ops.append(W(out_d, from_register="d"))
            ops.append(COMPUTE("diag", _copy, ["left"]))  # next row's diagonal
            ops.append(COMPUTE("up", _copy, ["d"]))  # next row's upper value
        programs[cells[j]] = ops

    return ArrayProgram(cells, messages, programs, name=f"lcs-{m}x{n}")


def lcs_registers(b_codes: list[float]) -> dict[str, dict[str, float | None]]:
    """Preload B's character codes, one per cell."""
    return {f"C{j + 1}": {"b": code} for j, code in enumerate(b_codes)}


def encode(text: str) -> list[float]:
    """Characters to float codes."""
    return [float(ord(ch)) for ch in text]


def lcs_expected(a: str, b: str) -> int:
    """Reference LCS length by plain dynamic programming."""
    m, n = len(a), len(b)
    row = [0] * (n + 1)
    for i in range(1, m + 1):
        prev_diag = 0
        for j in range(1, n + 1):
            saved = row[j]
            if a[i - 1] == b[j - 1]:
                row[j] = prev_diag + 1
            else:
                row[j] = max(row[j], row[j - 1])
            prev_diag = saved
    return row[n]


def lcs_program_for(a: str, b: str) -> ArrayProgram:
    """Convenience: build the pipeline directly from two strings."""
    return lcs_program(len(a), len(b), encode(a))
