"""Generalized FIR filtering (convolution) on a linear array.

This generalizes Fig. 2 to ``k`` taps and ``n`` outputs: the host feeds
``x_1 .. x_{n+k-1}``; cell ``Cj`` holds weight ``w_{k+1-j}``; x-values are
relayed rightward (each cell forwarding the suffix its right neighbours
still need) while y-accumulations flow leftward, starting at the rightmost
cell with ``y_t = w_1 * x_t``. For ``k=3, n=2`` the emitted transfer
sequence is exactly the Fig. 2 listing.

Convolution and FIR filtering are the same computation (Kung's "Why
systolic architectures?" [7] uses convolution as the running example), so
this module serves both workloads.
"""

from __future__ import annotations

from repro.core.message import Message
from repro.core.ops import COMPUTE, Op, R, W
from repro.core.program import ArrayProgram


def _acc(y: float, w: float, x: float) -> float:
    return y + w * x


def _first(w: float, x: float) -> float:
    return w * x


def fir_cells(taps: int) -> tuple[str, ...]:
    """Cell names for a ``taps``-tap filter: HOST, C1..Ck."""
    return ("HOST",) + tuple(f"C{i + 1}" for i in range(taps))


def fir_program(
    taps: int,
    outputs: int,
    xs: tuple[float, ...] | None = None,
    name: str | None = None,
) -> ArrayProgram:
    """Build the filtering program for ``taps`` weights and ``outputs`` results.

    Args:
        taps: number of filter weights (k >= 1); also the number of cells.
        outputs: number of filter outputs (n >= 1).
        xs: the ``n + k - 1`` input samples; defaults to 1, 2, 3, ...
        name: program name; defaults to ``fir-k<k>-n<n>``.
    """
    if taps < 1 or outputs < 1:
        raise ValueError("taps and outputs must be >= 1")
    k, n = taps, outputs
    n_inputs = n + k - 1
    if xs is None:
        xs = tuple(float(i + 1) for i in range(n_inputs))
    if len(xs) != n_inputs:
        raise ValueError(f"need {n_inputs} inputs, got {len(xs)}")
    cells = fir_cells(k)
    messages: list[Message] = []
    programs: dict[str, list[Op]] = {}

    def x_msg(j: int) -> str:
        """The x-stream entering cell j (j=1 comes from the host)."""
        return f"X{j}"

    def y_msg(j: int) -> str:
        """The y-stream leaving cell j leftward (j=1 ends at the host)."""
        return f"Y{j}"

    for j in range(1, k + 1):
        left = cells[j - 1]
        messages.append(Message(x_msg(j), left, cells[j], n + k - j))
        messages.append(Message(y_msg(j), cells[j], left, n))

    host_ops: list[Op] = [W(x_msg(1), constant=xs[i]) for i in range(k)]
    for t in range(1, n + 1):
        host_ops.append(R(y_msg(1), into=f"y{t}"))
        if k + t - 1 < n_inputs:
            host_ops.append(W(x_msg(1), constant=xs[k + t - 1]))
    programs["HOST"] = host_ops

    for j in range(1, k + 1):
        ops: list[Op] = []
        x_in, y_out = x_msg(j), y_msg(j)
        is_last = j == k
        x_out = None if is_last else x_msg(j + 1)
        forwarded = 0
        # Prologue: relay the first k - j samples onward before any output
        # work reaches this cell (Fig. 2's leading R/W pairs).
        for _ in range(k - j):
            ops.append(R(x_in, into="x"))
            ops.append(W(x_out, from_register="x"))  # type: ignore[arg-type]
            forwarded += 1
        x_out_len = n + k - j - 1
        for _t in range(n):
            ops.append(R(x_in, into="x"))
            if is_last:
                ops.append(COMPUTE("y", _first, ["w", "x"]))
            else:
                ops.append(R(y_msg(j + 1), into="y"))
                ops.append(COMPUTE("y", _acc, ["y", "w", "x"]))
            if x_out is not None and forwarded < x_out_len:
                ops.append(W(x_out, from_register="x"))
                forwarded += 1
            ops.append(W(y_out, from_register="y"))
        programs[cells[j]] = ops

    return ArrayProgram(
        cells, messages, programs, name=name or f"fir-k{k}-n{n}"
    )


def fir_registers(weights: tuple[float, ...]) -> dict[str, dict[str, float | None]]:
    """Preloaded weight registers: ``w_{k+1-j}`` into cell ``Cj``."""
    k = len(weights)
    return {f"C{j}": {"w": weights[k - j]} for j in range(1, k + 1)}


def fir_expected(
    xs: tuple[float, ...], weights: tuple[float, ...], outputs: int
) -> list[float]:
    """Reference outputs: ``y_t = sum_i w_i * x_{t+i-1}``."""
    k = len(weights)
    return [
        sum(weights[i] * xs[t + i] for i in range(k)) for t in range(outputs)
    ]


def fir_host_registers_expected(
    xs: tuple[float, ...], weights: tuple[float, ...], outputs: int
) -> dict[str, float]:
    """The host registers ``y1..yn`` a correct run must produce."""
    values = fir_expected(xs, weights, outputs)
    return {f"y{t + 1}": values[t] for t in range(outputs)}
