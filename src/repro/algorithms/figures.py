"""The paper's example programs, exactly as printed.

Each function returns the :class:`ArrayProgram` of one figure. Where the
source scan garbles a listing, the reconstruction used here is the
canonical minimal program consistent with every behavioural statement the
paper makes about it; the relevant prose is quoted at each site (see also
DESIGN.md, "OCR note").
"""

from __future__ import annotations

from repro.core.message import Message
from repro.core.ops import COMPUTE, Op, R, W
from repro.core.program import ArrayProgram

#: Cell names of the Fig. 2 filtering example (host treated as a cell).
FIG2_CELLS = ("HOST", "C1", "C2", "C3")


def fig2_fir(
    xs: tuple[float, float, float, float] = (1.0, 2.0, 3.0, 4.0),
) -> ArrayProgram:
    """Fig. 2: the 3-tap FIR filter program, with its arithmetic.

    The host provides x1..x4 and receives y1, y2 where
    ``y_i = w1*x_i + w2*x_{i+1} + w3*x_{i+2}``. Weights are preloaded as
    cell registers (w3 in C1, w2 in C2, w1 in C3 — the preloading phase is
    not part of the listing, exactly as in the paper). Compute statements
    are placed where the figure places them; they are invisible to the
    deadlock analyses.
    """
    x1, x2, x3, x4 = xs
    acc = lambda y, w, x: y + w * x  # noqa: E731 - the cells' update step
    first = lambda w, x: w * x  # noqa: E731 - C3 starts each accumulation
    messages = [
        Message("XA", "HOST", "C1", 4),
        Message("XB", "C1", "C2", 3),
        Message("XC", "C2", "C3", 2),
        Message("YA", "C1", "HOST", 2),
        Message("YB", "C2", "C1", 2),
        Message("YC", "C3", "C2", 2),
    ]
    host = [
        W("XA", constant=x1),
        W("XA", constant=x2),
        W("XA", constant=x3),
        R("YA", into="y1"),
        W("XA", constant=x4),
        R("YA", into="y2"),
    ]
    c1 = [
        R("XA", into="x"),
        W("XB", from_register="x"),
        R("XA", into="x"),
        W("XB", from_register="x"),
        R("XA", into="x"),
        R("YB", into="y"),
        COMPUTE("y", acc, ["y", "w", "x"]),  # y1 = y1 + w3*x3
        W("XB", from_register="x"),
        W("YA", from_register="y"),
        R("XA", into="x"),
        R("YB", into="y"),
        COMPUTE("y", acc, ["y", "w", "x"]),  # y2 = y2 + w3*x4
        W("YA", from_register="y"),
    ]
    c2 = [
        R("XB", into="x"),
        W("XC", from_register="x"),
        R("XB", into="x"),
        R("YC", into="y"),
        W("XC", from_register="x"),
        COMPUTE("y", acc, ["y", "w", "x"]),  # y1 = y1 + w2*x2
        W("YB", from_register="y"),
        R("XB", into="x"),
        R("YC", into="y"),
        COMPUTE("y", acc, ["y", "w", "x"]),  # y2 = y2 + w2*x3
        W("YB", from_register="y"),
    ]
    c3 = [
        R("XC", into="x"),
        COMPUTE("y", first, ["w", "x"]),  # y1 = w1*x1
        W("YC", from_register="y"),
        R("XC", into="x"),
        COMPUTE("y", first, ["w", "x"]),  # y2 = w1*x2
        W("YC", from_register="y"),
    ]
    return ArrayProgram(
        FIG2_CELLS,
        messages,
        {"HOST": host, "C1": c1, "C2": c2, "C3": c3},
        name="fig2-fir",
    )


def fig2_registers(
    weights: tuple[float, float, float] = (0.5, 0.25, 0.125),
) -> dict[str, dict[str, float | None]]:
    """The preloaded weight registers for :func:`fig2_fir`.

    ``weights = (w1, w2, w3)``; the paper preloads w3 into C1, w2 into
    C2 and w1 into C3.
    """
    w1, w2, w3 = weights
    return {"C1": {"w": w3}, "C2": {"w": w2}, "C3": {"w": w1}}


def fig2_expected_outputs(
    xs: tuple[float, float, float, float] = (1.0, 2.0, 3.0, 4.0),
    weights: tuple[float, float, float] = (0.5, 0.25, 0.125),
) -> tuple[float, float]:
    """The y1, y2 the host must receive (Section 2.2's formulas)."""
    x1, x2, x3, x4 = xs
    w1, w2, w3 = weights
    return (
        w1 * x1 + w2 * x2 + w3 * x3,
        w1 * x2 + w2 * x3 + w3 * x4,
    )


def fig5_p1() -> ArrayProgram:
    """Fig. 5, program P1 — deadlocked without buffering.

    Fully recoverable from Fig. 10 and the Section 8 prose: C1 writes two
    words of A before the first word of B, while C2 reads B first ("cell
    Cl cannot finish writing the first word in A, because cell C2 is not
    ready to read any word in A"). With two-word queue buffering and
    separate queues, Section 8 shows it completes.
    """
    messages = [Message("A", "C1", "C2", 4), Message("B", "C1", "C2", 2)]
    c1 = [W("A"), W("A"), W("B"), W("A"), W("B"), W("A")]
    c2 = [R("B"), R("A"), R("B"), R("A"), R("A"), R("A")]
    return ArrayProgram(
        ("C1", "C2"), messages, {"C1": c1, "C2": c2}, name="fig5-p1"
    )


def fig5_p2() -> ArrayProgram:
    """Fig. 5, program P2 — both cells write before reading.

    Reconstruction (OCR-garbled listing): the canonical program matching
    "neither Cl nor C2 can finish writing the first word in its output
    message" with unbuffered queues. Unlike P3, buffering rescues it: with
    lookahead the pairs become executable (writes may be skipped), so it
    is the P1-like member of the write-first family.
    """
    messages = [Message("A", "C1", "C2", 2), Message("B", "C2", "C1", 2)]
    c1 = [W("A"), W("A"), R("B"), R("B")]
    c2 = [W("B"), W("B"), R("A"), R("A")]
    return ArrayProgram(
        ("C1", "C2"), messages, {"C1": c1, "C2": c2}, name="fig5-p2"
    )


def fig5_p3() -> ArrayProgram:
    """Fig. 5, program P3 — a true circular wait.

    Reconstruction (OCR-garbled listing): each cell reads before it
    writes, so each write's value "may depend on the preceding read
    operation" (Section 8.1/R1) — the program that would be *incorrectly*
    classified deadlock-free if lookahead could skip reads. No buffering
    can save it.
    """
    messages = [Message("A", "C1", "C2", 1), Message("B", "C2", "C1", 1)]
    c1 = [R("B"), W("A")]
    c2 = [R("A"), W("B")]
    return ArrayProgram(
        ("C1", "C2"), messages, {"C1": c1, "C2": c2}, name="fig5-p3"
    )


def fig6_cycle() -> ArrayProgram:
    """Fig. 6: messages form a sender/receiver cycle, yet the program is
    deadlock-free — the paper's warning that cycle-checking is not a
    deadlock test."""
    messages = [
        Message("A", "C1", "C2", 1),
        Message("B", "C2", "C3", 1),
        Message("C", "C3", "C4", 1),
        Message("D", "C4", "C1", 1),
    ]
    programs = {
        "C1": [W("A"), R("D")],
        "C2": [R("A"), W("B")],
        "C3": [R("B"), W("C")],
        "C4": [R("C"), W("D")],
    }
    return ArrayProgram(("C1", "C2", "C3", "C4"), messages, programs, name="fig6")


def fig7_program(
    c_len: int = 4, b_len: int = 2, think_cycles: int = 0
) -> ArrayProgram:
    """Fig. 7: queue-induced deadlock example 1.

    C travels C1 -> C4 across every interval; A is local to C2 -> C3; B is
    local to C3 -> C4. C4 reads all of C before any of B, so B must not
    grab the C3-C4 queue first. ``think_cycles`` inserts a compute delay
    before C3 starts writing B — sweeping it moves B's queue request
    relative to C's header arrival (the figure's D1/D2 timing constants).
    """
    messages = [
        Message("A", "C2", "C3", 4),
        Message("B", "C3", "C4", b_len),
        Message("C", "C1", "C4", c_len),
    ]
    think: list[Op] = (
        [COMPUTE("t", lambda: 0.0, [], cycles=think_cycles)] if think_cycles else []
    )
    programs = {
        "C1": [W("C") for _ in range(c_len)],
        "C2": [W("A") for _ in range(4)],
        "C3": [R("A") for _ in range(4)] + think + [W("B") for _ in range(b_len)],
        "C4": [R("C") for _ in range(c_len)] + [R("B") for _ in range(b_len)],
    }
    return ArrayProgram(
        ("C1", "C2", "C3", "C4"), messages, programs, name="fig7"
    )


def fig8_program() -> ArrayProgram:
    """Fig. 8: interleaved reads from multiple messages by cell C3.

    C3 reads A and B in the interleaved order A,B,A,A,B,B,A, making A and
    B related: they need the same label and hence separate queues on the
    shared C2-C3 interval. One queue deadlocks; "no deadlock if # queues
    greater than 1".
    """
    messages = [
        Message("A", "C2", "C3", 4),
        Message("B", "C1", "C3", 3),
    ]
    programs = {
        "C1": [W("B"), W("B"), W("B")],
        "C2": [W("A"), W("A"), W("A"), W("A")],
        "C3": [R("A"), R("B"), R("A"), R("A"), R("B"), R("B"), R("A")],
    }
    return ArrayProgram(("C1", "C2", "C3"), messages, programs, name="fig8")


def fig9_program() -> ArrayProgram:
    """Fig. 9: the symmetric case — interleaved writes by cell C1.

    C1 writes A (to C2) and B (through C2 to C3) in the order
    A,B,A,A,B,B,A; A and B compete on the C1-C2 interval and, being
    related, need separate queues there.
    """
    messages = [
        Message("A", "C1", "C2", 4),
        Message("B", "C1", "C3", 3),
    ]
    programs = {
        "C1": [W("A"), W("B"), W("A"), W("A"), W("B"), W("B"), W("A")],
        "C2": [R("A"), R("A"), R("A"), R("A")],
        "C3": [R("B"), R("B"), R("B")],
    }
    return ArrayProgram(("C1", "C2", "C3"), messages, programs, name="fig9")


def all_figures() -> dict[str, ArrayProgram]:
    """Every figure program, keyed by a short identifier."""
    return {
        "fig2": fig2_fir(),
        "fig5-p1": fig5_p1(),
        "fig5-p2": fig5_p2(),
        "fig5-p3": fig5_p3(),
        "fig6": fig6_cycle(),
        "fig7": fig7_program(),
        "fig8": fig8_program(),
        "fig9": fig9_program(),
    }
