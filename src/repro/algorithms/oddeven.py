"""Odd-even transposition sort on a linear array.

``n`` cells each hold one key (preloaded register ``v``). The network runs
``n`` rounds; in round ``r`` the pairs starting at ``r % 2`` exchange keys
and keep (min, max). Each exchange is two one-word messages. The operation
*order* matters under systolic communication: within a pair the left cell
writes first and the right cell reads first — writing on both sides first
would be exactly the P2 deadlock of Fig. 5.
"""

from __future__ import annotations

from repro.core.message import Message
from repro.core.ops import COMPUTE, Op, R, W
from repro.core.program import ArrayProgram


def _keep_min(mine: float, theirs: float) -> float:
    return min(mine, theirs)


def _keep_max(mine: float, theirs: float) -> float:
    return max(mine, theirs)


def oddeven_cells(n: int) -> tuple[str, ...]:
    """Cell names C1..Cn."""
    return tuple(f"C{i + 1}" for i in range(n))


def oddeven_program(n: int, rounds: int | None = None) -> ArrayProgram:
    """Build the sorting network program for ``n`` keys.

    Args:
        n: number of cells/keys (>= 2).
        rounds: number of transposition rounds; defaults to ``n`` (enough
            to sort any input).
    """
    if n < 2:
        raise ValueError("need at least two cells")
    rounds = n if rounds is None else rounds
    cells = oddeven_cells(n)
    messages: list[Message] = []
    programs: dict[str, list[Op]] = {cell: [] for cell in cells}

    for r in range(rounds):
        start = r % 2
        for left in range(start, n - 1, 2):
            right = left + 1
            lcell, rcell = cells[left], cells[right]
            to_right = f"E{r}_{left}"  # left's key travelling right
            to_left = f"F{r}_{left}"  # right's key travelling left
            messages.append(Message(to_right, lcell, rcell, 1))
            messages.append(Message(to_left, rcell, lcell, 1))
            # Left half-pair: write then read, keep the minimum.
            programs[lcell] += [
                W(to_right, from_register="v"),
                R(to_left, into="o"),
                COMPUTE("v", _keep_min, ["v", "o"]),
            ]
            # Right half-pair: read then write, keep the maximum.
            programs[rcell] += [
                R(to_right, into="o"),
                W(to_left, from_register="v"),
                COMPUTE("v", _keep_max, ["v", "o"]),
            ]

    return ArrayProgram(cells, messages, programs, name=f"oddeven-{n}")


def oddeven_registers(keys: list[float]) -> dict[str, dict[str, float | None]]:
    """Preload one key per cell."""
    return {f"C{i + 1}": {"v": key} for i, key in enumerate(keys)}


def oddeven_result(registers: dict, n: int) -> list[float]:
    """Extract the (hopefully sorted) keys from final cell registers."""
    return [registers[f"C{i + 1}"]["v"] for i in range(n)]
